//! A minimal, stable JSON codec for the telemetry snapshots and the
//! `BENCH_*.json` perf records.
//!
//! The build environment has no crates.io access (no `serde`), and the
//! emitted files are **committed and diffed**, so stability matters
//! more than generality: object keys keep their insertion order, floats
//! print with Rust's shortest round-trip formatting, and the writer
//! emits deterministic 2-space-indented output. The parser accepts
//! standard JSON (objects, arrays, strings with escapes, numbers,
//! booleans, null) — enough to read back what the writer (or a human
//! editing a baseline) produces.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON document tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    /// Every JSON number; `u64` counters round-trip exactly up to 2^53,
    /// far beyond any counter a bench run produces.
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    /// Insertion-ordered object (the writer emits keys in this order).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An empty object.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Adds (or replaces) a key on an object; panics on non-objects —
    /// builder misuse, not data-dependent.
    pub fn set(mut self, key: &str, value: impl Into<Json>) -> Json {
        match &mut self {
            Json::Obj(entries) => {
                let value = value.into();
                if let Some(slot) = entries.iter_mut().find(|(k, _)| k == key) {
                    slot.1 = value;
                } else {
                    entries.push((key.to_string(), value));
                }
                self
            }
            _ => panic!("Json::set on a non-object"),
        }
    }

    /// Field lookup on objects; `None` elsewhere.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as a `u64`, if it is one (integral and in range).
    pub fn as_u64(&self) -> Option<u64> {
        let n = self.as_f64()?;
        (n >= 0.0 && n.fract() == 0.0 && n <= u64::MAX as f64).then_some(n as u64)
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes with 2-space indentation and a trailing newline —
    /// the committed-file format.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_number(out, *n),
            Json::Str(s) => write_string(out, s),
            Json::Arr(items) if items.is_empty() => out.push_str("[]"),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    item.write(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Json::Obj(entries) if entries.is_empty() => out.push_str("{}"),
            Json::Obj(entries) => {
                out.push('{');
                for (i, (key, value)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    write_string(out, key);
                    out.push_str(": ");
                    value.write(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
        }
    }

    /// Parses a JSON document, requiring it to span the whole input.
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut parser = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        parser.skip_ws();
        let value = parser.value()?;
        parser.skip_ws();
        if parser.pos != parser.bytes.len() {
            return Err(parser.err("trailing characters after document"));
        }
        Ok(value)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}
impl From<f64> for Json {
    fn from(n: f64) -> Json {
        Json::Num(n)
    }
}
impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::Num(n as f64)
    }
}
impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::Num(n as f64)
    }
}
impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}
impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}
impl From<Vec<Json>> for Json {
    fn from(items: Vec<Json>) -> Json {
        Json::Arr(items)
    }
}
impl From<&BTreeMap<String, u64>> for Json {
    fn from(map: &BTreeMap<String, u64>) -> Json {
        Json::Obj(
            map.iter()
                .map(|(k, &v)| (k.clone(), Json::from(v)))
                .collect(),
        )
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

/// JSON has no NaN/infinity; emit `null` (readers treat it as absent).
fn write_number(out: &mut String, n: f64) {
    if !n.is_finite() {
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 9.007_199_254_740_992e15 {
        // Integral values in the exact-f64 range print without the
        // trailing `.0` Rust's `{}` would add for f64 — committed
        // counters should read as integers.
        let _ = write!(out, "{}", n as i64);
    } else {
        // Rust's shortest round-trip float formatting.
        let _ = write!(out, "{n}");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure, with a byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What was wrong.
    pub message: String,
    /// Byte offset where it was detected.
    pub offset: usize,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", byte as char)))
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{text}`")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            entries.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(entries));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            // Surrogate pairs are not emitted by our
                            // writer; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is valid UTF-8 by
                    // construction of &str).
                    let rest = &self.bytes[self.pos..];
                    let len = match rest[0] {
                        b if b < 0x80 => 1,
                        b if b >= 0xf0 => 4,
                        b if b >= 0xe0 => 3,
                        _ => 2,
                    };
                    let s = std::str::from_utf8(&rest[..len])
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    out.push_str(s);
                    self.pos += len;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("malformed number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_nested_document() {
        let doc = Json::obj()
            .set("schema_version", 1u64)
            .set("name", "sweep")
            .set("quick", true)
            .set("nothing", Json::Null)
            .set("throughput", 1234.5678901234567)
            .set(
                "rows",
                Json::Arr(vec![
                    Json::obj().set("t", 1u64).set("s", 0.25),
                    Json::obj().set("t", 2u64).set("s", 0.125),
                ]),
            )
            .set("note", "tricky \"chars\"\n\tand unicode: µs → ok");
        let text = doc.to_pretty();
        let back = Json::parse(&text).expect("writer output parses");
        assert_eq!(back, doc);
        // Integral numbers print without a trailing `.0`.
        assert!(text.contains("\"schema_version\": 1,"));
        assert!(!text.contains("1.0,"));
    }

    #[test]
    fn parses_standard_json() {
        let back =
            Json::parse(r#"{ "a": [1, -2.5, 3e2], "b": {"nested": null}, "c": "µs \uD800" }"#)
                .unwrap();
        assert_eq!(
            back.get("a").unwrap().as_arr().unwrap()[2].as_f64(),
            Some(300.0)
        );
        assert_eq!(back.get("b").unwrap().get("nested"), Some(&Json::Null));
        assert!(back.get("c").unwrap().as_str().unwrap().starts_with("µs"));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "[1,]", "{\"a\" 1}", "tru", "1 2", "\"open"] {
            assert!(Json::parse(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn u64_accessor_rejects_non_integers() {
        assert_eq!(Json::Num(3.0).as_u64(), Some(3));
        assert_eq!(Json::Num(3.5).as_u64(), None);
        assert_eq!(Json::Num(-1.0).as_u64(), None);
        assert_eq!(Json::Str("3".into()).as_u64(), None);
    }
}
