//! # fastbn-telemetry
//!
//! The measurement substrate for the fastbn serving stack: where time
//! goes (per-stage latency histograms), what happened (atomic event
//! counters), and a durable record of both (a stable JSON codec for
//! `BENCH_*.json` perf-trajectory files and metric snapshots).
//!
//! Design constraints, in order:
//!
//! 1. **Free on the record path.** Recording is a few relaxed atomics —
//!    no locks, no allocation, no floating point. The latency
//!    [`Histogram`] uses fixed log buckets (≤ 12.5% quantile error,
//!    saturating overflow bucket) so `p50/p90/p99/max` come out of a
//!    plain array copy. The opt-out ([`MetricsRegistry::counters_only`])
//!    reduces every histogram record to one predictable branch and lets
//!    instrumented code skip its clock reads.
//! 2. **Dependency-free.** This crate sits *below* everything —
//!    even `fastbn-parallel` instruments its pool with it — and uses
//!    nothing but `std` (not even the vendored shims).
//! 3. **Consistent snapshots.** A [`MetricsRegistry::snapshot`] taken
//!    under concurrent recording never shows torn histogram counts
//!    (totals are derived from the bucket array) and respects the
//!    serving stack's staged-counter inequalities (writers use the
//!    `SeqCst` counter tier; see [`Counter`]).
//!
//! ## Quickstart
//!
//! ```
//! use fastbn_telemetry::MetricsRegistry;
//! use std::time::{Duration, Instant};
//!
//! let metrics = MetricsRegistry::new();
//! // Resolve once (locks), record hot (lock-free).
//! let completed = metrics.counter("serve.completed");
//! let latency = metrics.histogram("serve.request.total_ns");
//!
//! for _ in 0..100 {
//!     let start = Instant::now();
//!     std::hint::black_box(2 + 2); // the "request"
//!     completed.inc();
//!     latency.record_duration(start.elapsed().max(Duration::from_nanos(50)));
//! }
//!
//! let snap = metrics.snapshot();
//! assert_eq!(snap.counter("serve.completed"), 100);
//! let lat = snap.histogram("serve.request.total_ns").unwrap();
//! assert_eq!(lat.count, 100);
//! assert!(lat.p99() >= lat.p50() && lat.max >= lat.p99());
//! // And the whole family serializes to stable JSON:
//! let text = snap.to_json().to_pretty();
//! assert!(text.contains("serve.completed"));
//! ```

#![forbid(unsafe_code)]

mod counter;
mod histogram;
pub mod http;
pub mod json;
mod prom;
mod registry;
pub mod trace;

pub use counter::Counter;
pub use histogram::{Histogram, HistogramSnapshot, BUCKETS};
pub use http::{Introspection, IntrospectionBuilder, SnapshotFn};
pub use json::{Json, JsonError};
pub use prom::prometheus_text;
pub use registry::{MetricsRegistry, MetricsSnapshot};
pub use trace::{
    NameId, SlowEntry, SpanRecord, TraceConfig, TraceToken, TraceView, Tracer, SPAN_COLLECT,
    SPAN_COMPUTE, SPAN_DELIVERY, SPAN_DISTRIBUTE, SPAN_KERNEL, SPAN_QUEUE_WAIT, SPAN_REQUEST,
    SPAN_WINDOW,
};
