//! The [`MetricsRegistry`]: named metric families with a consistent
//! [`MetricsRegistry::snapshot`].
//!
//! A registry is the unit of wiring: a server (or a bench run) creates
//! one, every instrumented component registers its counters and
//! histograms **by name** against it, and one `snapshot()` call turns
//! the whole family into an immutable, JSON-serializable record.
//! Registration takes a lock; *recording* never does — `counter()` /
//! `histogram()` hand back `Arc`s that call sites resolve once and hit
//! with plain atomics thereafter.
//!
//! # Naming convention
//!
//! Dotted paths, coarse-to-fine: `serve.submitted`,
//! `serve.stage.queue_wait_ns`, `serve.model.alarm.completed`,
//! `pool.regions_started`, `model.alarm.cache.hits`. Histogram names
//! end in a unit suffix (`_ns`). Nothing enforces this, but the
//! emitted JSON sorts by name, so a consistent scheme is what makes
//! the output scannable.
//!
//! # The timing opt-out
//!
//! [`MetricsRegistry::counters_only`] builds a registry whose
//! histograms are *inactive*: `record` drops values after one branch,
//! and instrumented callers are expected to skip their clock reads when
//! [`MetricsRegistry::is_timing_enabled`] is false. Counters stay live
//! either way — the serving stack's accounting invariants are built on
//! them, so they are not optional.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, PoisonError};

use crate::counter::Counter;
use crate::histogram::{Histogram, HistogramSnapshot};
use crate::json::Json;

/// A named family of counters, gauges, and latency histograms. `Send +
/// Sync`; share it behind an `Arc`.
#[derive(Debug)]
pub struct MetricsRegistry {
    timing: bool,
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, u64>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

impl MetricsRegistry {
    /// A registry with timing (histograms) enabled.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::with_timing(true)
    }

    /// The telemetry opt-out: counters stay live, histograms are
    /// inactive, and instrumented code should skip its clock reads.
    pub fn counters_only() -> MetricsRegistry {
        MetricsRegistry::with_timing(false)
    }

    fn with_timing(timing: bool) -> MetricsRegistry {
        MetricsRegistry {
            timing,
            counters: Mutex::new(BTreeMap::new()),
            gauges: Mutex::new(BTreeMap::new()),
            histograms: Mutex::new(BTreeMap::new()),
        }
    }

    /// Whether histograms record and callers should take timestamps.
    pub fn is_timing_enabled(&self) -> bool {
        self.timing
    }

    /// The counter named `name`, created on first use. Resolve once and
    /// keep the `Arc`; recording through it is lock-free.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut counters = self.counters.lock().unwrap_or_else(PoisonError::into_inner);
        Arc::clone(
            counters
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(Counter::new())),
        )
    }

    /// The histogram named `name`, created on first use (inactive in a
    /// [`MetricsRegistry::counters_only`] registry).
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut histograms = self
            .histograms
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        Arc::clone(
            histograms
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(Histogram::with_active(self.timing))),
        )
    }

    /// Sets a gauge — a point-in-time value written by an *exporter*
    /// (cache occupancy, pool width, models resident) rather than
    /// accumulated on a hot path.
    pub fn set_gauge(&self, name: &str, value: u64) {
        self.gauges
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .insert(name.to_string(), value);
    }

    /// An immutable copy of every registered metric. Counters read with
    /// the snapshot discipline of their writers (a single relaxed load
    /// here; pipeline-staged counters guarantee their inequalities at
    /// the writer side); histograms copy their bucket arrays.
    pub fn snapshot(&self) -> MetricsSnapshot {
        // Lock order: counters, gauges, histograms — uncontended in
        // practice (snapshots are rare, registration is rarer).
        let counters = self
            .counters
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .map(|(name, counter)| (name.clone(), counter.get_seq()))
            .collect();
        let gauges = self
            .gauges
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone();
        let histograms = self
            .histograms
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .map(|(name, histogram)| (name.clone(), histogram.snapshot()))
            .collect();
        MetricsSnapshot {
            counters,
            gauges,
            histograms,
        }
    }
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        MetricsRegistry::new()
    }
}

/// One consistent copy of a registry's metrics, ready for assertions or
/// JSON export.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, u64>,
    /// Histogram snapshots by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// A counter's value (0 when never registered — counters start at
    /// zero, so absence and zero are deliberately indistinguishable).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// A gauge's value, if an exporter wrote it.
    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.gauges.get(name).copied()
    }

    /// A histogram's snapshot, if registered.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.get(name)
    }

    /// Serializes to the stable **metrics schema v1**: three
    /// name-sorted maps; histograms as summaries
    /// (`count/sum_ns/mean_ns/p50_ns/p90_ns/p99_ns/max_ns`), not raw
    /// bucket arrays — the summaries are what trend files diff.
    pub fn to_json(&self) -> Json {
        let histograms = Json::Obj(
            self.histograms
                .iter()
                .map(|(name, h)| {
                    (
                        name.clone(),
                        Json::obj()
                            .set("count", h.count)
                            .set("sum_ns", h.sum)
                            .set("mean_ns", h.mean())
                            .set("p50_ns", h.p50())
                            .set("p90_ns", h.p90())
                            .set("p99_ns", h.p99())
                            .set("max_ns", h.max),
                    )
                })
                .collect(),
        );
        Json::obj()
            .set("counters", &self.counters)
            .set("gauges", &self.gauges)
            .set("histograms", histograms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_identity_is_per_name() {
        let registry = MetricsRegistry::new();
        let a = registry.counter("serve.submitted");
        let b = registry.counter("serve.submitted");
        let c = registry.counter("serve.completed");
        assert!(Arc::ptr_eq(&a, &b), "same name, same counter");
        assert!(!Arc::ptr_eq(&a, &c));
        a.inc();
        b.add(2);
        let snap = registry.snapshot();
        assert_eq!(snap.counter("serve.submitted"), 3);
        assert_eq!(snap.counter("serve.completed"), 0);
        assert_eq!(snap.counter("never.registered"), 0);
    }

    #[test]
    fn counters_only_disables_histograms_not_counters() {
        let registry = MetricsRegistry::counters_only();
        assert!(!registry.is_timing_enabled());
        registry.counter("c").inc();
        let h = registry.histogram("h_ns");
        h.record(1000);
        let snap = registry.snapshot();
        assert_eq!(snap.counter("c"), 1);
        assert!(snap.histogram("h_ns").unwrap().is_empty());
    }

    #[test]
    fn snapshot_serializes_sorted_and_round_trips() {
        let registry = MetricsRegistry::new();
        registry.counter("b.count").add(7);
        registry.counter("a.count").add(3);
        registry.set_gauge("pool.threads", 4);
        registry.histogram("lat_ns").record(100);
        let json = registry.snapshot().to_json();
        let text = json.to_pretty();
        // BTreeMap ordering: "a.count" serialized before "b.count".
        assert!(text.find("a.count").unwrap() < text.find("b.count").unwrap());
        let back = Json::parse(&text).unwrap();
        assert_eq!(
            back.get("counters")
                .unwrap()
                .get("b.count")
                .unwrap()
                .as_u64(),
            Some(7)
        );
        assert_eq!(
            back.get("gauges")
                .unwrap()
                .get("pool.threads")
                .unwrap()
                .as_u64(),
            Some(4)
        );
        let lat = back.get("histograms").unwrap().get("lat_ns").unwrap();
        assert_eq!(lat.get("count").unwrap().as_u64(), Some(1));
        assert!(lat.get("p99_ns").unwrap().as_u64().unwrap() >= 100);
    }
}
