//! The [`Histogram`]: a fixed-size log-bucket latency histogram whose
//! record path is a handful of relaxed atomic operations — no
//! allocation, no locks, no floating point.
//!
//! # Bucket layout
//!
//! Values (nanoseconds, by convention) map to buckets with a
//! linear-log scheme: values below 8 get one exact bucket each, and
//! every power-of-two octave above that is split into 8 sub-buckets, so
//! any reported quantile is within one sub-bucket (≤ 12.5% relative
//! error) of the true value. The layout is *fixed at compile time* —
//! [`BUCKETS`] slots covering `0 ..= 2^42 − 1` ns (≈ 73 minutes);
//! anything larger lands in a final **saturating overflow bucket** and
//! is additionally captured exactly by the `max` register. Fixed layout
//! is what makes the record path allocation-free and a snapshot a plain
//! array copy.
//!
//! # Consistency
//!
//! Bucket counts are individually monotonic, so a [`Histogram::snapshot`]
//! taken while other threads record observes, per bucket, some value
//! between "records finished before the snapshot began" and "records
//! started before it ended" — never a torn or decreasing count. The
//! snapshot's `count` is **derived** by summing the bucket array (there
//! is no separate count cell to tear against), so repeated snapshots
//! have non-decreasing totals and `quantile` is always computed over an
//! array that sums to exactly `count`. Locked in by
//! `tests/histogram.rs`.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Duration;

/// Sub-bucket resolution: each octave splits into `2^SUB_BITS` buckets.
const SUB_BITS: u32 = 3;
/// Sub-buckets per octave (8): quantiles resolve to ≤ 12.5% error.
const SUB: usize = 1 << SUB_BITS;
/// Highest fully-resolved octave: values `< 2^(MAX_EXP + 1)` ns get a
/// real bucket; beyond that (≈ 73 minutes) the overflow bucket
/// saturates.
const MAX_EXP: u32 = 41;
/// Total bucket count, including the saturating overflow bucket.
pub const BUCKETS: usize = SUB + (MAX_EXP - SUB_BITS + 1) as usize * SUB + 1;
/// Index of the saturating overflow bucket.
const OVERFLOW: usize = BUCKETS - 1;

/// The bucket index `value` maps to (total function: every `u64` maps
/// to exactly one of the [`BUCKETS`] slots).
#[inline]
pub(crate) fn bucket_index(value: u64) -> usize {
    if value < SUB as u64 {
        return value as usize;
    }
    let exp = 63 - value.leading_zeros();
    if exp > MAX_EXP {
        return OVERFLOW;
    }
    let top = exp - SUB_BITS;
    let sub = ((value >> top) & (SUB as u64 - 1)) as usize;
    SUB + (top as usize) * SUB + sub
}

/// The inclusive `[lo, hi]` value range of bucket `index`.
pub(crate) fn bucket_bounds(index: usize) -> (u64, u64) {
    if index < SUB {
        return (index as u64, index as u64);
    }
    if index >= OVERFLOW {
        return (1u64 << (MAX_EXP + 1), u64::MAX);
    }
    let rel = index - SUB;
    let top = (rel / SUB) as u32;
    let sub = (rel % SUB) as u64;
    let lo = (SUB as u64 + sub) << top;
    (lo, lo + (1u64 << top) - 1)
}

/// A concurrent fixed-bucket histogram. Create through
/// [`MetricsRegistry::histogram`](crate::MetricsRegistry::histogram)
/// (which decides whether it is active) or [`Histogram::new`] directly.
pub struct Histogram {
    /// Inactive histograms drop every record after one predictable
    /// branch — the telemetry opt-out leaves the call sites in place
    /// and makes only the atomics (and the callers' clock reads)
    /// disappear.
    active: AtomicBool,
    buckets: [AtomicU64; BUCKETS],
    /// Sum of recorded values, for `mean` (relaxed; approximate during
    /// concurrent recording, exact at quiescence).
    sum: AtomicU64,
    /// Largest recorded value, exact even for overflow-bucket values.
    max: AtomicU64,
}

impl Histogram {
    /// An empty, active histogram.
    pub fn new() -> Histogram {
        Histogram::with_active(true)
    }

    /// An empty histogram; inactive ones ignore records.
    pub fn with_active(active: bool) -> Histogram {
        Histogram {
            active: AtomicBool::new(active),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Whether records are being kept.
    pub fn is_active(&self) -> bool {
        self.active.load(Ordering::Relaxed)
    }

    /// Records one value (nanoseconds by convention). Three relaxed
    /// atomic RMWs; no allocation.
    #[inline]
    pub fn record(&self, value: u64) {
        if !self.is_active() {
            return;
        }
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Records a duration as nanoseconds (saturating past `u64::MAX`,
    /// which is ~584 years — the overflow bucket's problem, not ours).
    #[inline]
    pub fn record_duration(&self, duration: Duration) {
        self.record(u64::try_from(duration.as_nanos()).unwrap_or(u64::MAX));
    }

    /// A consistent snapshot: the bucket array copied once, with
    /// `count` derived from the copy (see the module docs for why this
    /// can never tear).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let count = counts.iter().sum();
        HistogramSnapshot {
            count,
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
            counts,
        }
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let snap = self.snapshot();
        f.debug_struct("Histogram")
            .field("active", &self.is_active())
            .field("count", &snap.count)
            .field("p50", &snap.quantile(0.50))
            .field("p99", &snap.quantile(0.99))
            .field("max", &snap.max)
            .finish()
    }
}

/// An immutable copy of a histogram's state; quantiles are computed
/// here, off the record path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket counts (length [`BUCKETS`]).
    pub counts: Vec<u64>,
    /// Total records — always exactly the sum of `counts`.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    /// Largest recorded value (exact).
    pub max: u64,
}

impl HistogramSnapshot {
    /// An empty snapshot (what an inactive histogram yields).
    pub fn empty() -> HistogramSnapshot {
        HistogramSnapshot {
            counts: vec![0; BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The nearest-rank `q`-quantile (`0.0 < q <= 1.0`), reported as
    /// the **upper bound** of the bucket holding that rank (≤ 12.5%
    /// above the true value) and clamped to the exact observed `max`.
    /// Returns 0 on an empty snapshot.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (index, &n) in self.counts.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_bounds(index).1.min(self.max);
            }
        }
        self.max
    }

    /// Median (`quantile(0.50)`).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th percentile.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Arithmetic mean of recorded values (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_value_maps_to_exactly_one_bucket_and_its_bounds() {
        // Exhaustive near the small-value boundary, sampled elsewhere.
        for v in 0u64..4096 {
            let i = bucket_index(v);
            let (lo, hi) = bucket_bounds(i);
            assert!(
                lo <= v && v <= hi,
                "value {v} outside bucket {i} [{lo}, {hi}]"
            );
        }
        for exp in 3..=63u32 {
            for v in [1u64 << exp, (1u64 << exp) + 1, (1u64 << exp) - 1] {
                let i = bucket_index(v);
                let (lo, hi) = bucket_bounds(i);
                assert!(lo <= v && v <= hi, "value {v} outside bucket {i}");
            }
        }
        let i = bucket_index(u64::MAX);
        assert_eq!(
            i,
            BUCKETS - 1,
            "u64::MAX saturates into the overflow bucket"
        );
    }

    #[test]
    fn buckets_partition_contiguously() {
        // Consecutive buckets tile the value space with no gap/overlap.
        let mut expected_lo = 0u64;
        for i in 0..BUCKETS {
            let (lo, hi) = bucket_bounds(i);
            assert_eq!(lo, expected_lo, "bucket {i} starts at a gap");
            assert!(hi >= lo);
            if hi == u64::MAX {
                assert_eq!(i, BUCKETS - 1);
                return;
            }
            expected_lo = hi + 1;
        }
        panic!("last bucket must end at u64::MAX");
    }

    #[test]
    fn relative_error_is_bounded() {
        // Above the exact range, a bucket's width is at most 1/8 of its
        // lower bound — the ≤ 12.5% quantile error bound.
        for i in SUB..BUCKETS - 1 {
            let (lo, hi) = bucket_bounds(i);
            assert!(
                (hi - lo) as f64 <= lo as f64 / 8.0 + 1.0,
                "bucket {i} [{lo}, {hi}] wider than 12.5%"
            );
        }
    }

    #[test]
    fn inactive_histogram_ignores_records() {
        let h = Histogram::with_active(false);
        h.record(42);
        h.record_duration(Duration::from_millis(5));
        let snap = h.snapshot();
        assert!(snap.is_empty());
        assert_eq!(snap.quantile(0.99), 0);
    }

    #[test]
    fn mean_and_max_track_exact_values() {
        let h = Histogram::new();
        for v in [10u64, 20, 30] {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 3);
        assert_eq!(snap.sum, 60);
        assert_eq!(snap.max, 30);
        assert!((snap.mean() - 20.0).abs() < 1e-12);
    }
}
