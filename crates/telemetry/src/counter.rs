//! The [`Counter`]: a monotonic atomic event counter.
//!
//! Two ordering tiers are exposed on purpose. The plain methods
//! ([`Counter::inc`], [`Counter::add`], [`Counter::get`]) are `Relaxed`
//! — right for throughput counters where only the eventual total
//! matters (batches dispatched, cache dedups, regions run). The `_seq`
//! methods are `SeqCst` — required by *staged* pipeline counters whose
//! cross-counter inequalities must be observable from a concurrent
//! snapshot (the serving stack's `submitted ≥ dequeued ≥ completed +
//! cancelled` accounting invariant reads later stages first, which only
//! works when every stage increment is totally ordered).

use std::sync::atomic::{AtomicU64, Ordering};

/// A monotonic `u64` event counter, safe to share between any number of
/// recording threads. `Default` starts at zero.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A counter starting at zero.
    pub const fn new() -> Counter {
        Counter {
            value: AtomicU64::new(0),
        }
    }

    /// Adds one (`Relaxed`).
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n` (`Relaxed`).
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one with `SeqCst` ordering — for staged counters whose
    /// relative order against *other* counters must be snapshot-visible.
    #[inline]
    pub fn inc_seq(&self) {
        self.value.fetch_add(1, Ordering::SeqCst);
    }

    /// Subtracts one with `SeqCst` ordering. The serving stack uses this
    /// to retract a pre-counted submission whose enqueue failed; the
    /// counter stays monotonic in the quiescent view because the
    /// matching `inc_seq` always happens first on the same thread.
    #[inline]
    pub fn dec_seq(&self) {
        self.value.fetch_sub(1, Ordering::SeqCst);
    }

    /// Current value (`Relaxed`).
    #[inline]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Current value (`SeqCst`) — pairs with [`Counter::inc_seq`] for
    /// ordered multi-counter snapshots.
    #[inline]
    pub fn get_seq(&self) -> u64 {
        self.value.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn counts_across_threads() {
        let counter = Arc::new(Counter::new());
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let counter = Arc::clone(&counter);
                scope.spawn(move || {
                    for _ in 0..10_000 {
                        counter.inc();
                    }
                });
            }
        });
        assert_eq!(counter.get(), 80_000);
    }

    #[test]
    fn seq_ops_round_trip() {
        let counter = Counter::new();
        counter.inc_seq();
        counter.inc_seq();
        counter.dec_seq();
        assert_eq!(counter.get_seq(), 1);
        counter.add(5);
        assert_eq!(counter.get(), 6);
    }
}
