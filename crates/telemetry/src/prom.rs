//! Prometheus text-format exposition for [`MetricsSnapshot`].
//!
//! Emits the text format (version 0.0.4) scrapers understand: counters
//! and gauges as single samples, histograms as **summaries** — the
//! `quantile`-labelled p50/p90/p99 samples plus the `_sum` and `_count`
//! series (the torn-read-safe `sum`/`count` snapshot fields make both
//! exact at quiescence). Dotted fastbn metric names (`serve.submitted`)
//! become Prometheus-legal underscored ones (`serve_submitted`);
//! everything stays name-sorted because the snapshot maps are.

use std::fmt::Write as _;

use crate::registry::MetricsSnapshot;

/// A metric name with every Prometheus-illegal character replaced by
/// `_` (legal: `[a-zA-Z0-9_:]`, non-digit lead).
fn sanitize(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 1);
    for (i, c) in name.chars().enumerate() {
        let legal =
            c == '_' || c == ':' || c.is_ascii_alphabetic() || (i > 0 && c.is_ascii_digit());
        if legal {
            out.push(c);
        } else if i == 0 && c.is_ascii_digit() {
            out.push('_');
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Renders a snapshot as Prometheus text exposition (version 0.0.4).
pub fn prometheus_text(snap: &MetricsSnapshot) -> String {
    let mut out = String::with_capacity(4096);
    for (name, value) in &snap.counters {
        let name = sanitize(name);
        let _ = writeln!(out, "# TYPE {name} counter");
        let _ = writeln!(out, "{name} {value}");
    }
    for (name, value) in &snap.gauges {
        let name = sanitize(name);
        let _ = writeln!(out, "# TYPE {name} gauge");
        let _ = writeln!(out, "{name} {value}");
    }
    for (name, h) in &snap.histograms {
        let name = sanitize(name);
        let _ = writeln!(out, "# TYPE {name} summary");
        for (q, v) in [(0.5, h.p50()), (0.9, h.p90()), (0.99, h.p99())] {
            let _ = writeln!(out, "{name}{{quantile=\"{q}\"}} {v}");
        }
        let _ = writeln!(out, "{name}_sum {}", h.sum);
        let _ = writeln!(out, "{name}_count {}", h.count);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::MetricsRegistry;

    #[test]
    fn sanitizes_names() {
        assert_eq!(sanitize("serve.stage.compute_ns"), "serve_stage_compute_ns");
        assert_eq!(sanitize("model.alarm-v2.hits"), "model_alarm_v2_hits");
        assert_eq!(sanitize("9lives"), "_9lives");
        assert_eq!(sanitize("ok:name_1"), "ok:name_1");
    }

    #[test]
    fn exposition_has_types_quantiles_sum_and_count() {
        let registry = MetricsRegistry::new();
        registry.counter("serve.completed").add(5);
        registry.set_gauge("pool.threads", 8);
        let h = registry.histogram("serve.request.total_ns");
        for v in [100u64, 200, 300] {
            h.record(v);
        }
        let text = prometheus_text(&registry.snapshot());
        assert!(text.contains("# TYPE serve_completed counter\nserve_completed 5\n"));
        assert!(text.contains("# TYPE pool_threads gauge\npool_threads 8\n"));
        assert!(text.contains("# TYPE serve_request_total_ns summary"));
        assert!(text.contains("serve_request_total_ns{quantile=\"0.5\"}"));
        assert!(text.contains("serve_request_total_ns{quantile=\"0.99\"}"));
        assert!(text.contains("serve_request_total_ns_sum 600\n"));
        assert!(text.contains("serve_request_total_ns_count 3\n"));
    }

    #[test]
    fn every_line_is_well_formed() {
        let registry = MetricsRegistry::new();
        registry.counter("a.b").inc();
        registry.histogram("lat_ns").record(42);
        let text = prometheus_text(&registry.snapshot());
        for line in text.lines() {
            assert!(
                line.starts_with("# TYPE ") || {
                    let mut parts = line.rsplitn(2, ' ');
                    let value = parts.next().unwrap();
                    let name = parts.next().unwrap_or("");
                    !name.is_empty() && value.parse::<f64>().is_ok()
                },
                "malformed exposition line: {line:?}"
            );
        }
    }
}
