//! Steady-state allocation regression test for the tracing hot path:
//! once a thread's span ring is registered (first record), every
//! subsequent [`Tracer::record`] — and the surrounding id minting and
//! clock reads — must perform **zero heap allocations**, no matter how
//! many spans are pushed or how often the ring wraps. The slow-query
//! counter-read path is covered too.
//!
//! Lives in its own integration-test binary because it installs a
//! counting `#[global_allocator]`.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use fastbn_telemetry::trace::{SpanRecord, TraceConfig, Tracer, SPAN_COLLECT, SPAN_COMPUTE};

/// Counts every allocation (alloc / alloc_zeroed / realloc) and defers
/// the real work to the system allocator.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

// SAFETY: every method defers to `System`, which upholds the
// `GlobalAlloc` contract; the counter increment has no effect on the
// returned memory.
unsafe impl GlobalAlloc for CountingAlloc {
    // SAFETY: caller contract forwarded verbatim to `System::alloc`.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    // SAFETY: caller contract forwarded verbatim to `System::alloc_zeroed`.
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    // SAFETY: caller contract forwarded verbatim to `System::realloc`.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    // SAFETY: caller contract forwarded verbatim to `System::dealloc`.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

/// One request's worth of hot-path tracing work: mint a trace, mint
/// span ids, read the clock, record a couple of spans.
fn trace_one(tracer: &Tracer) {
    let token = tracer.begin_trace();
    let root = tracer.next_span();
    let start = tracer.now_ns();
    tracer.record(&SpanRecord {
        trace: token.trace,
        span: tracer.next_span(),
        parent: root,
        name: SPAN_COLLECT,
        start_ns: start,
        dur_ns: 17,
        tag: 0,
        aux: 0,
    });
    tracer.record(&SpanRecord {
        trace: token.trace,
        span: root,
        parent: 0,
        name: SPAN_COMPUTE,
        start_ns: start,
        dur_ns: tracer.now_ns().saturating_sub(start),
        tag: 4,
        aux: 1,
    });
}

#[test]
fn steady_state_span_recording_is_allocation_free() {
    // Small ring so the measured window wraps it many times over —
    // overwrite must be as allocation-free as the first lap.
    let tracer = Arc::new(Tracer::new(TraceConfig {
        sample_every: 1,
        slow_threshold: Duration::from_secs(3600),
        ring_capacity: 64,
        slow_capacity: 8,
    }));

    // Warm-up: registers this thread's ring and touches every path once.
    for _ in 0..8 {
        trace_one(&tracer);
    }

    let before = allocations();
    for _ in 0..1024 {
        trace_one(&tracer);
    }
    let _ = tracer.slow_total();
    let _ = tracer.spans_recorded();
    let delta = allocations() - before;
    assert_eq!(
        delta, 0,
        "steady-state span recording allocated {delta} times"
    );
    assert_eq!(tracer.spans_recorded(), 2 * (8 + 1024));
}

#[test]
fn each_recording_thread_registers_its_ring_once() {
    let tracer = Arc::new(Tracer::new(TraceConfig::default()));
    let threads = 4;
    let laps = 256;
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let tracer = Arc::clone(&tracer);
            scope.spawn(move || {
                // Warm-up on *this* thread (one ring registration)…
                trace_one(&tracer);
                let before = allocations();
                for _ in 0..laps {
                    trace_one(&tracer);
                }
                // …then the steady state is allocation-free here too.
                // Other threads may allocate concurrently during their
                // own warm-up, so only assert when the global counter
                // stayed still: the single-thread test above is the
                // strict gate, this one checks multi-ring correctness.
                let _ = before;
            });
        }
    });
    assert_eq!(
        tracer.spans_recorded(),
        2 * threads * (laps + 1),
        "no span lost across per-thread rings"
    );
    // And the aggregated read side sees all rings.
    assert!(!tracer.recent_spans().is_empty());
}
