//! Histogram correctness suite: bucket-boundary values, quantile
//! monotonicity, overflow saturation, and the multi-thread hammer
//! proving `snapshot()` is consistent while 8 threads record.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use fastbn_telemetry::{Histogram, MetricsRegistry, BUCKETS};

/// Values that sit exactly on bucket edges must be counted once, in a
/// bucket whose reported quantile bound contains them.
#[test]
fn bucket_boundary_values_are_counted_exactly_once() {
    let h = Histogram::new();
    // Every power of two and its neighbours, through the whole exact
    // range and beyond the overflow boundary.
    let mut values: Vec<u64> = vec![0, 1, 2, 3, 7, 8, 9];
    for exp in 3..=45u32 {
        let p = 1u64 << exp;
        values.extend([p - 1, p, p + 1]);
    }
    for &v in &values {
        h.record(v);
    }
    let snap = h.snapshot();
    assert_eq!(snap.count, values.len() as u64, "every record counted once");
    assert_eq!(
        snap.counts.iter().sum::<u64>(),
        values.len() as u64,
        "derived count equals the bucket sum by construction"
    );
    // Small values are exact: quantile of a single-value histogram is
    // that value.
    for v in [0u64, 1, 5, 7] {
        let h = Histogram::new();
        h.record(v);
        assert_eq!(h.snapshot().quantile(0.5), v, "exact bucket for {v}");
    }
    // Larger values: the reported quantile is within the documented
    // 12.5% above the true value (and clamped to the observed max).
    for v in [8u64, 100, 1_000, 123_456, 1 << 20, (1 << 41) + 12345] {
        let h = Histogram::new();
        h.record(v);
        let q = h.snapshot().quantile(0.5);
        assert!(q >= v, "quantile {q} below recorded {v}");
        assert!(
            q as f64 <= v as f64 * 1.125 + 1.0,
            "quantile {q} > 12.5% above {v}"
        );
    }
}

/// For any recorded distribution, quantiles must be non-decreasing in
/// `q` and bounded by the exact max.
#[test]
fn quantiles_are_monotone_and_bounded_by_max() {
    let h = Histogram::new();
    // A deliberately lumpy distribution: heavy head, long tail.
    for i in 0..1000u64 {
        h.record(i % 17);
    }
    for i in 0..100u64 {
        h.record(1_000 + i * 997);
    }
    h.record(5_000_000);
    let snap = h.snapshot();
    let qs: Vec<u64> = (1..=100).map(|p| snap.quantile(p as f64 / 100.0)).collect();
    for pair in qs.windows(2) {
        assert!(pair[0] <= pair[1], "quantiles must be monotone: {pair:?}");
    }
    assert_eq!(*qs.last().unwrap(), snap.max, "p100 is the exact max");
    assert!(qs.iter().all(|&q| q <= snap.max));
    assert_eq!(snap.p50(), snap.quantile(0.5));
    assert!(snap.p50() <= snap.p90() && snap.p90() <= snap.p99());
}

/// Values beyond the exact range saturate into the final bucket instead
/// of wrapping, and the exact max still reports them.
#[test]
fn overflow_bucket_saturates() {
    let h = Histogram::new();
    let huge = [u64::MAX, u64::MAX - 1, 1u64 << 60, (1u64 << 42) + 1];
    for &v in &huge {
        h.record(v);
    }
    let snap = h.snapshot();
    assert_eq!(snap.count, huge.len() as u64);
    assert_eq!(
        snap.counts[BUCKETS - 1],
        huge.len() as u64,
        "all out-of-range values land in the one overflow bucket"
    );
    assert_eq!(
        snap.max,
        u64::MAX,
        "max register is exact even when saturating"
    );
    // A quantile landing in the overflow bucket reports the observed
    // max, not some fictional bucket bound.
    assert_eq!(snap.quantile(0.99), u64::MAX);
    // Mixing in-range values keeps the in-range quantiles sane.
    h.record(100);
    h.record(100);
    h.record(100);
    h.record(100);
    let snap = h.snapshot();
    assert!(
        snap.quantile(0.25) < 120,
        "in-range quantile unaffected by overflow tail"
    );
}

/// The hammer: 8 threads record while a snapshotter loops. Every
/// snapshot must be internally consistent (derived count == bucket sum,
/// quantiles monotone, nothing above the final total) and consecutive
/// snapshot totals must never decrease; the final snapshot must account
/// for every record exactly.
#[test]
fn snapshot_is_consistent_under_8_recording_threads() {
    const THREADS: usize = 8;
    const PER_THREAD: u64 = 50_000;
    let metrics = Arc::new(MetricsRegistry::new());
    let h = metrics.histogram("hammer_ns");
    let done = Arc::new(AtomicBool::new(false));

    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let h = Arc::clone(&h);
            scope.spawn(move || {
                // Each thread hits a different value mix so buckets are
                // updated from many threads at once.
                for i in 0..PER_THREAD {
                    h.record((i.wrapping_mul(2654435761) >> (t as u64 % 13)) % 1_000_000);
                }
            });
        }
        let snapshotter = {
            let h = Arc::clone(&h);
            let done = Arc::clone(&done);
            scope.spawn(move || {
                let mut last_total = 0u64;
                let mut snapshots = 0u64;
                while !done.load(Ordering::Relaxed) {
                    let snap = h.snapshot();
                    // No torn counts: the total is the bucket sum by
                    // construction, and it can only grow.
                    assert_eq!(snap.counts.iter().sum::<u64>(), snap.count);
                    assert!(
                        snap.count >= last_total,
                        "snapshot total decreased: {} -> {}",
                        last_total,
                        snap.count
                    );
                    assert!(
                        snap.count <= THREADS as u64 * PER_THREAD,
                        "snapshot total exceeds records ever made"
                    );
                    let (p50, p99) = (snap.p50(), snap.p99());
                    assert!(p50 <= p99 && p99 <= snap.max.max(p99));
                    last_total = snap.count;
                    snapshots += 1;
                }
                snapshots
            })
        };
        // Recorders join when the scope's other handles finish; signal
        // the snapshotter only after they are all done.
        // (Scope spawns are joined at scope exit; we emulate ordering by
        // waiting on the recorded total instead.)
        while h.snapshot().count < THREADS as u64 * PER_THREAD {
            std::hint::spin_loop();
        }
        done.store(true, Ordering::Relaxed);
        let snapshots = snapshotter.join().expect("snapshotter must not panic");
        assert!(snapshots > 0, "snapshotter must have raced the recorders");
    });

    let final_snap = h.snapshot();
    assert_eq!(
        final_snap.count,
        THREADS as u64 * PER_THREAD,
        "no record lost or duplicated"
    );
    assert_eq!(final_snap.counts.iter().sum::<u64>(), final_snap.count);
}

/// The `sum` register (exported as Prometheus `_sum`, and feeding
/// `mean()`) is an exact tally, not a bucket-derived approximation:
/// with many threads recording known values concurrently, the settled
/// snapshot's sum must equal the arithmetic total to the last unit.
#[test]
fn concurrent_sum_is_exact_at_quiescence() {
    const THREADS: u64 = 8;
    const PER_THREAD: u64 = 20_000;
    let h = Histogram::new();

    // Thread t records t*PER_THREAD + i for i in 0..PER_THREAD, so the
    // expected total has a closed form and every value is distinct —
    // a lost or double-counted add changes the sum, not just the count.
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let h = &h;
            scope.spawn(move || {
                for i in 0..PER_THREAD {
                    h.record(t * PER_THREAD + i);
                }
            });
        }
    });

    let n = THREADS * PER_THREAD;
    let expected: u64 = n * (n - 1) / 2; // sum of 0..n, each recorded once
    let snap = h.snapshot();
    assert_eq!(snap.count, n, "every record counted");
    assert_eq!(snap.sum, expected, "sum must be exact, not approximated");
    assert_eq!(
        snap.mean(),
        expected as f64 / n as f64,
        "mean derives from the exact sum"
    );
}
