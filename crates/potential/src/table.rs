//! Potential tables: a domain plus one `f64` weight per assignment.

use std::sync::Arc;

use fastbn_bayesnet::Cpt;

use crate::domain::Domain;

/// A non-negative real-valued function over the assignments of a
/// [`Domain`] — clique potentials, separator potentials, messages and CPT
/// factors are all `PotentialTable`s.
///
/// The domain is shared via [`Arc`] because inference clones potentials on
/// every query reset; cloning the table then costs one `memcpy` of the
/// values and two refcount bumps.
#[derive(Debug, Clone)]
pub struct PotentialTable {
    domain: Arc<Domain>,
    values: Vec<f64>,
}

/// Error when normalizing a table whose entries sum to zero — in Hugin
/// propagation this means the entered evidence has probability zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ZeroSumError;

impl std::fmt::Display for ZeroSumError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "potential table sums to zero (evidence has probability 0)"
        )
    }
}

impl std::error::Error for ZeroSumError {}

impl PotentialTable {
    /// The multiplicative identity: all entries 1.
    pub fn ones(domain: Arc<Domain>) -> Self {
        let size = domain.size();
        PotentialTable {
            domain,
            values: vec![1.0; size],
        }
    }

    /// All entries 0 (additive identity, used as a marginalization target).
    pub fn zeros(domain: Arc<Domain>) -> Self {
        let size = domain.size();
        PotentialTable {
            domain,
            values: vec![0.0; size],
        }
    }

    /// Wraps explicit values; panics if the length does not match the
    /// domain size.
    pub fn from_values(domain: Arc<Domain>, values: Vec<f64>) -> Self {
        assert_eq!(
            values.len(),
            domain.size(),
            "value vector must match domain size"
        );
        PotentialTable { domain, values }
    }

    /// Converts a CPT into a potential table over its **sorted** scope.
    ///
    /// The CPT layout (first parent slowest, child fastest) generally
    /// differs from the canonical sorted-domain layout, so entries are
    /// re-indexed through the domain's strides.
    pub fn from_cpt(cpt: &Cpt, cards_by_id: &[usize]) -> Self {
        let scope = cpt.scope_sorted();
        let domain = Arc::new(Domain::from_vars(&scope, cards_by_id));
        let child_stride = domain.stride_of(cpt.child());
        let parent_strides: Vec<usize> =
            cpt.parents().iter().map(|&p| domain.stride_of(p)).collect();
        let parent_cards = cpt.parent_cardinalities();

        let mut values = vec![0.0; domain.size()];
        let mut digits = vec![0usize; parent_cards.len()];
        let mut base = 0usize;
        for row in 0..cpt.num_rows() {
            let row_values = cpt.row(row);
            for (state, &p) in row_values.iter().enumerate() {
                values[base + state * child_stride] = p;
            }
            // Mixed-radix increment over parents (last parent fastest,
            // matching `Cpt::row_index`), updating `base` incrementally.
            let mut i = digits.len();
            while i > 0 {
                i -= 1;
                digits[i] += 1;
                base += parent_strides[i];
                if digits[i] < parent_cards[i] {
                    break;
                }
                base -= parent_strides[i] * parent_cards[i];
                digits[i] = 0;
            }
        }
        PotentialTable { domain, values }
    }

    /// The table's domain.
    pub fn domain(&self) -> &Domain {
        &self.domain
    }

    /// Shared handle to the domain.
    pub fn domain_arc(&self) -> &Arc<Domain> {
        &self.domain
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when the table has a single (scalar) entry.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Entry values.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Mutable entry values.
    pub fn values_mut(&mut self) -> &mut [f64] {
        &mut self.values
    }

    /// Sum of all entries.
    pub fn sum(&self) -> f64 {
        self.values.iter().sum()
    }

    /// Scales every entry by `factor`.
    pub fn scale(&mut self, factor: f64) {
        for v in &mut self.values {
            *v *= factor;
        }
    }

    /// Sets every entry to `value`.
    pub fn fill(&mut self, value: f64) {
        self.values.fill(value);
    }

    /// Normalizes entries to sum to 1; returns the pre-normalization sum
    /// (the probability of the entered evidence, in Hugin propagation).
    pub fn normalize(&mut self) -> Result<f64, ZeroSumError> {
        let sum = self.sum();
        if sum <= 0.0 || !sum.is_finite() {
            return Err(ZeroSumError);
        }
        self.scale(1.0 / sum);
        Ok(sum)
    }

    /// Copies values from a same-domain table, reusing this allocation.
    pub fn copy_values_from(&mut self, other: &PotentialTable) {
        debug_assert_eq!(self.domain.vars(), other.domain.vars());
        self.values.copy_from_slice(&other.values);
    }

    /// Value at the assignment given by `states` (aligned with
    /// `domain().vars()`).
    pub fn value_at(&self, states: &[usize]) -> f64 {
        self.values[self.domain.index_of(states)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastbn_bayesnet::VarId;

    fn domain_ab() -> Arc<Domain> {
        Arc::new(Domain::new(vec![(VarId(0), 2), (VarId(1), 3)]))
    }

    #[test]
    fn constructors() {
        let d = domain_ab();
        assert_eq!(PotentialTable::ones(d.clone()).values(), &[1.0; 6]);
        assert_eq!(PotentialTable::zeros(d.clone()).values(), &[0.0; 6]);
        let t = PotentialTable::from_values(d, vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(t.len(), 6);
        assert_eq!(t.value_at(&[1, 2]), 5.0);
    }

    #[test]
    #[should_panic(expected = "must match domain size")]
    fn wrong_length_rejected() {
        PotentialTable::from_values(domain_ab(), vec![1.0]);
    }

    #[test]
    fn sum_scale_normalize() {
        let mut t = PotentialTable::from_values(domain_ab(), vec![1.0, 1.0, 2.0, 0.0, 0.0, 0.0]);
        assert_eq!(t.sum(), 4.0);
        let z = t.normalize().unwrap();
        assert_eq!(z, 4.0);
        assert!((t.sum() - 1.0).abs() < 1e-12);
        assert_eq!(t.values()[2], 0.5);

        t.fill(0.0);
        assert_eq!(t.normalize(), Err(ZeroSumError));
    }

    #[test]
    fn from_cpt_root_node() {
        // Root CPT: P(A) over card 3.
        let cpt = Cpt::new(VarId(1), vec![], 3, vec![], vec![0.2, 0.3, 0.5]).unwrap();
        let cards = vec![2, 3];
        let t = PotentialTable::from_cpt(&cpt, &cards);
        assert_eq!(t.domain().vars(), &[VarId(1)]);
        assert_eq!(t.values(), &[0.2, 0.3, 0.5]);
    }

    #[test]
    fn from_cpt_reorders_unsorted_parents() {
        // Child VarId(1) card 2 with parents [VarId(2), VarId(0)] (CPT
        // order), cards 2 and 3. Sorted scope: (0,1,2) cards (3,2,2).
        let mut values = Vec::new();
        for p2 in 0..2 {
            for p0 in 0..3 {
                let p = 0.05 * (1 + p2 * 3 + p0) as f64;
                values.extend([p, 1.0 - p]);
            }
        }
        let cpt = Cpt::new(VarId(1), vec![VarId(2), VarId(0)], 2, vec![2, 3], values).unwrap();
        let cards = vec![3, 2, 2];
        let t = PotentialTable::from_cpt(&cpt, &cards);
        assert_eq!(t.domain().vars(), &[VarId(0), VarId(1), VarId(2)]);
        // Check every entry against the CPT lookup.
        for s0 in 0..3 {
            for s1 in 0..2 {
                for s2 in 0..2 {
                    let expected = cpt.probability(s1, &[s2, s0]);
                    assert_eq!(
                        t.value_at(&[s0, s1, s2]),
                        expected,
                        "states ({s0},{s1},{s2})"
                    );
                }
            }
        }
    }

    #[test]
    fn from_cpt_rows_marginalize_to_one() {
        // Σ_child P(child | parents) = 1 for every parent config.
        let cpt = Cpt::new(
            VarId(0),
            vec![VarId(3)],
            2,
            vec![2],
            vec![0.7, 0.3, 0.1, 0.9],
        )
        .unwrap();
        let mut cards = vec![2, 0, 0, 2];
        cards[1] = 1;
        cards[2] = 1;
        let t = PotentialTable::from_cpt(&cpt, &cards);
        // Scope sorted: (0, 3); child 0 is the *slower* variable here.
        assert_eq!(t.domain().vars(), &[VarId(0), VarId(3)]);
        for s3 in 0..2 {
            let total: f64 = (0..2).map(|s0| t.value_at(&[s0, s3])).sum();
            assert!((total - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn copy_values_reuses_allocation() {
        let d = domain_ab();
        let src = PotentialTable::from_values(d.clone(), vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let mut dst = PotentialTable::zeros(d);
        let ptr_before = dst.values().as_ptr();
        dst.copy_values_from(&src);
        assert_eq!(dst.values().as_ptr(), ptr_before);
        assert_eq!(dst.values(), src.values());
    }
}
