//! Ordered discrete domains: the variable scope of one potential table.

use fastbn_bayesnet::VarId;

/// The scope of a potential table: a strictly ascending list of variables
/// with their cardinalities, plus precomputed row-major strides (last
/// variable fastest).
///
/// Keeping every domain sorted by `VarId` gives a canonical ordering, so
/// any two tables over intersecting scopes agree on how shared variables
/// are laid out — which is what makes the index mappings in
/// [`crate::index_map`] pure stride arithmetic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Domain {
    vars: Box<[VarId]>,
    cards: Box<[usize]>,
    strides: Box<[usize]>,
    size: usize,
}

impl Domain {
    /// The empty (scalar) domain: no variables, table size 1.
    pub fn scalar() -> Self {
        Domain {
            vars: Box::new([]),
            cards: Box::new([]),
            strides: Box::new([]),
            size: 1,
        }
    }

    /// Builds a domain from `(variable, cardinality)` pairs; sorts them by
    /// variable id. Panics on duplicates or zero cardinalities.
    pub fn new(mut pairs: Vec<(VarId, usize)>) -> Self {
        pairs.sort_unstable_by_key(|&(v, _)| v);
        Self::from_sorted(pairs)
    }

    /// Builds a domain from pairs already sorted by ascending id. Panics if
    /// unsorted, duplicated, or any cardinality is zero.
    pub fn from_sorted(pairs: Vec<(VarId, usize)>) -> Self {
        let mut size = 1usize;
        for (i, &(v, card)) in pairs.iter().enumerate() {
            assert!(card > 0, "variable {v} has zero cardinality");
            if i > 0 {
                assert!(
                    pairs[i - 1].0 < v,
                    "domain variables must be strictly ascending"
                );
            }
            size = size
                .checked_mul(card)
                .expect("potential table size overflows usize");
        }
        let vars: Box<[VarId]> = pairs.iter().map(|&(v, _)| v).collect();
        let cards: Box<[usize]> = pairs.iter().map(|&(_, c)| c).collect();
        let mut strides = vec![0usize; pairs.len()].into_boxed_slice();
        let mut stride = 1usize;
        for i in (0..pairs.len()).rev() {
            strides[i] = stride;
            stride *= cards[i];
        }
        Domain {
            vars,
            cards,
            strides,
            size,
        }
    }

    /// Builds the domain of `vars` using a per-network cardinality lookup
    /// (`cards_by_id[v.index()]`).
    pub fn from_vars(vars: &[VarId], cards_by_id: &[usize]) -> Self {
        Self::new(vars.iter().map(|&v| (v, cards_by_id[v.index()])).collect())
    }

    /// Number of variables in scope.
    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }

    /// Table size: the product of all cardinalities.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Variables in ascending id order.
    pub fn vars(&self) -> &[VarId] {
        &self.vars
    }

    /// Cardinalities, aligned with [`Domain::vars`].
    pub fn cards(&self) -> &[usize] {
        &self.cards
    }

    /// Row-major strides, aligned with [`Domain::vars`].
    pub fn strides(&self) -> &[usize] {
        &self.strides
    }

    /// Position of `var` within this domain, if present (binary search).
    pub fn position_of(&self, var: VarId) -> Option<usize> {
        self.vars.binary_search(&var).ok()
    }

    /// Whether `var` is in scope.
    pub fn contains(&self, var: VarId) -> bool {
        self.position_of(var).is_some()
    }

    /// Stride of `var`; panics if absent.
    pub fn stride_of(&self, var: VarId) -> usize {
        self.strides[self.position_of(var).expect("variable in domain")]
    }

    /// Cardinality of `var`; panics if absent.
    pub fn card_of(&self, var: VarId) -> usize {
        self.cards[self.position_of(var).expect("variable in domain")]
    }

    /// Whether every variable of `self` appears in `other`.
    pub fn is_subdomain_of(&self, other: &Domain) -> bool {
        self.vars.iter().all(|&v| other.contains(v))
    }

    /// Flat index of an assignment (`states[i]` is the state of
    /// `vars()[i]`).
    pub fn index_of(&self, states: &[usize]) -> usize {
        debug_assert_eq!(states.len(), self.vars.len());
        states
            .iter()
            .zip(self.strides.iter())
            .map(|(&s, &st)| s * st)
            .sum()
    }

    /// Decodes flat index `idx` into `out` (one state per variable).
    pub fn decode(&self, idx: usize, out: &mut [usize]) {
        debug_assert!(idx < self.size);
        debug_assert_eq!(out.len(), self.vars.len());
        let mut rest = idx;
        for i in (0..self.vars.len()).rev() {
            out[i] = rest % self.cards[i];
            rest /= self.cards[i];
        }
        debug_assert_eq!(rest, 0);
    }

    /// State of `var` within flat index `idx` (no full decode).
    pub fn state_of(&self, idx: usize, var: VarId) -> usize {
        let pos = self.position_of(var).expect("variable in domain");
        (idx / self.strides[pos]) % self.cards[pos]
    }

    /// Union of two domains (cardinalities must agree on shared vars).
    pub fn union(&self, other: &Domain) -> Domain {
        let mut pairs = Vec::with_capacity(self.vars.len() + other.vars.len());
        let (mut i, mut j) = (0, 0);
        while i < self.vars.len() || j < other.vars.len() {
            match (self.vars.get(i), other.vars.get(j)) {
                (Some(&a), Some(&b)) if a == b => {
                    assert_eq!(
                        self.cards[i], other.cards[j],
                        "cardinality mismatch for {a} in union"
                    );
                    pairs.push((a, self.cards[i]));
                    i += 1;
                    j += 1;
                }
                (Some(&a), Some(&b)) if a < b => {
                    pairs.push((a, self.cards[i]));
                    i += 1;
                }
                (Some(_), Some(&b)) => {
                    pairs.push((b, other.cards[j]));
                    j += 1;
                }
                (Some(&a), None) => {
                    pairs.push((a, self.cards[i]));
                    i += 1;
                }
                (None, Some(&b)) => {
                    pairs.push((b, other.cards[j]));
                    j += 1;
                }
                (None, None) => unreachable!(),
            }
        }
        Domain::from_sorted(pairs)
    }

    /// Intersection of two domains.
    pub fn intersection(&self, other: &Domain) -> Domain {
        let pairs = self
            .vars
            .iter()
            .zip(self.cards.iter())
            .filter(|(v, _)| other.contains(**v))
            .map(|(&v, &c)| (v, c))
            .collect();
        Domain::from_sorted(pairs)
    }

    /// Variables of `self` not in `other` (with cardinalities).
    pub fn minus(&self, other: &Domain) -> Domain {
        let pairs = self
            .vars
            .iter()
            .zip(self.cards.iter())
            .filter(|(v, _)| !other.contains(**v))
            .map(|(&v, &c)| (v, c))
            .collect();
        Domain::from_sorted(pairs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn abc() -> Domain {
        // A (card 2), B (card 3), C (card 4); strides: A=12, B=4, C=1.
        Domain::new(vec![(VarId(2), 4), (VarId(0), 2), (VarId(1), 3)])
    }

    #[test]
    fn construction_sorts_and_strides() {
        let d = abc();
        assert_eq!(d.vars(), &[VarId(0), VarId(1), VarId(2)]);
        assert_eq!(d.cards(), &[2, 3, 4]);
        assert_eq!(d.strides(), &[12, 4, 1]);
        assert_eq!(d.size(), 24);
        assert_eq!(d.num_vars(), 3);
    }

    #[test]
    fn scalar_domain() {
        let d = Domain::scalar();
        assert_eq!(d.size(), 1);
        assert_eq!(d.num_vars(), 0);
        assert_eq!(d.index_of(&[]), 0);
    }

    #[test]
    fn index_decode_roundtrip_exhaustive() {
        let d = abc();
        let mut states = [0usize; 3];
        for idx in 0..d.size() {
            d.decode(idx, &mut states);
            assert_eq!(d.index_of(&states), idx);
            for (pos, &v) in d.vars().iter().enumerate() {
                assert_eq!(d.state_of(idx, v), states[pos]);
            }
        }
    }

    #[test]
    fn lookups() {
        let d = abc();
        assert_eq!(d.position_of(VarId(1)), Some(1));
        assert_eq!(d.position_of(VarId(9)), None);
        assert!(d.contains(VarId(2)));
        assert_eq!(d.stride_of(VarId(0)), 12);
        assert_eq!(d.card_of(VarId(2)), 4);
    }

    #[test]
    fn set_algebra() {
        let d = abc();
        let sub = Domain::new(vec![(VarId(0), 2), (VarId(2), 4)]);
        assert!(sub.is_subdomain_of(&d));
        assert!(!d.is_subdomain_of(&sub));
        assert_eq!(d.intersection(&sub), sub);
        assert_eq!(d.minus(&sub), Domain::new(vec![(VarId(1), 3)]));
        let other = Domain::new(vec![(VarId(1), 3), (VarId(5), 2)]);
        let u = d.union(&other);
        assert_eq!(u.vars(), &[VarId(0), VarId(1), VarId(2), VarId(5)]);
        assert_eq!(u.size(), 48);
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn duplicate_vars_rejected() {
        Domain::from_sorted(vec![(VarId(0), 2), (VarId(0), 2)]);
    }

    #[test]
    #[should_panic(expected = "zero cardinality")]
    fn zero_cardinality_rejected() {
        Domain::new(vec![(VarId(0), 0)]);
    }

    #[test]
    #[should_panic(expected = "cardinality mismatch")]
    fn union_checks_cardinalities() {
        let a = Domain::new(vec![(VarId(0), 2)]);
        let b = Domain::new(vec![(VarId(0), 3)]);
        a.union(&b);
    }

    #[test]
    fn from_vars_uses_lookup() {
        let cards = vec![2, 3, 4, 5];
        let d = Domain::from_vars(&[VarId(3), VarId(1)], &cards);
        assert_eq!(d.vars(), &[VarId(1), VarId(3)]);
        assert_eq!(d.cards(), &[3, 5]);
    }
}
