//! Index mappings between related potential tables.
//!
//! This module is the paper's central primitive: every table operation
//! reduces to walking one table's flat indices while computing the
//! corresponding index in another table. Three forms are provided:
//!
//! * [`embedding_strides`] — per-variable stride contributions for mapping
//!   a superdomain index onto a subdomain index (used by extension and by
//!   the per-entry side of marginalization);
//! * [`fiber_offsets`] — the source offsets of all completions of a target
//!   assignment (used to sum a marginalization "fiber" in ascending source
//!   order);
//! * [`Odometer`] — an incremental mixed-radix counter that maintains the
//!   mapped index in O(1) amortized per step, seedable at any position so
//!   parallel chunks pay exactly one full decode each.

use crate::domain::Domain;

/// For each variable of `iter_domain` (the domain being enumerated), the
/// stride of that variable in `target` — or 0 if the variable is absent
/// from `target`.
///
/// With these strides, `target_index(i) = Σ_v digit_v(i) * strides[v]`,
/// which is exactly the "index mapping" of the paper's extension and
/// marginalization primitives.
pub fn embedding_strides(iter_domain: &Domain, target: &Domain) -> Vec<usize> {
    iter_domain
        .vars()
        .iter()
        .map(|&v| target.position_of(v).map_or(0, |p| target.strides()[p]))
        .collect()
}

/// Offsets (in `source` index units) of every assignment of the variables
/// `source ∖ target`, in ascending order.
///
/// A marginalization target entry's value is the sum of
/// `source[base + off]` over these offsets; enumerating them in mixed-radix
/// order makes that sum ascend in source index, which keeps sequential and
/// parallel summation orders identical.
pub fn fiber_offsets(source: &Domain, target: &Domain) -> Vec<usize> {
    let summed = source.minus(target);
    let mut offsets = Vec::with_capacity(summed.size());
    // Strides of the summed variables inside the *source* table.
    let strides: Vec<usize> = summed.vars().iter().map(|&v| source.stride_of(v)).collect();
    let cards = summed.cards();
    let mut digits = vec![0usize; cards.len()];
    let mut offset = 0usize;
    loop {
        offsets.push(offset);
        // Mixed-radix increment, last variable fastest.
        let mut i = cards.len();
        loop {
            if i == 0 {
                return offsets;
            }
            i -= 1;
            digits[i] += 1;
            offset += strides[i];
            if digits[i] < cards[i] {
                break;
            }
            offset -= strides[i] * cards[i];
            digits[i] = 0;
        }
    }
}

/// Fully materialized mapping array: `map[i]` is the `target` index of
/// `iter_domain` entry `i`. This is the Element engine's GPU-style
/// precomputed mapping table; other engines compute the mapping on the fly.
pub fn materialize_map(iter_domain: &Domain, target: &Domain) -> Vec<u32> {
    assert!(
        target.size() <= u32::MAX as usize,
        "mapping table exceeds u32 index range"
    );
    let strides = embedding_strides(iter_domain, target);
    let mut odo = Odometer::new(iter_domain.cards(), &strides);
    (0..iter_domain.size())
        .map(|_| {
            let m = odo.mapped() as u32;
            odo.advance();
            m
        })
        .collect()
}

/// Incremental enumerator of a domain's assignments that maintains the
/// corresponding flat index in a target domain.
///
/// `advance` is O(1) amortized (a digit increment plus occasional carries);
/// `seek` costs one full mixed-radix decode and is how a parallel chunk
/// starts mid-range. Cards and strides are *borrowed*, so spinning up one
/// odometer per parallel chunk costs a single small `digits` allocation —
/// no stride-vector clones on the hot path.
#[derive(Debug, Clone)]
pub struct Odometer<'a> {
    cards: &'a [usize],
    /// Stride of each iterated variable in the *target* table (0 if the
    /// variable is not part of the target), e.g. from
    /// [`embedding_strides`].
    mapped_strides: &'a [usize],
    digits: Vec<usize>,
    mapped: usize,
}

impl<'a> Odometer<'a> {
    /// Builds an odometer over the given cardinalities with explicit
    /// per-variable target strides (same length), starting at position 0.
    pub fn new(cards: &'a [usize], mapped_strides: &'a [usize]) -> Self {
        assert_eq!(mapped_strides.len(), cards.len());
        Odometer {
            cards,
            mapped_strides,
            digits: vec![0; cards.len()],
            mapped: 0,
        }
    }

    /// Jumps to flat position `idx` of the iterated domain (one decode).
    pub fn seek(&mut self, idx: usize) {
        let mut rest = idx;
        self.mapped = 0;
        for i in (0..self.cards.len()).rev() {
            self.digits[i] = rest % self.cards[i];
            rest /= self.cards[i];
            self.mapped += self.digits[i] * self.mapped_strides[i];
        }
        debug_assert_eq!(rest, 0, "seek past end of domain");
    }

    /// The target index for the current position.
    #[inline]
    pub fn mapped(&self) -> usize {
        self.mapped
    }

    /// Steps to the next assignment (wraps to 0 past the end).
    #[inline]
    pub fn advance(&mut self) {
        let mut i = self.cards.len();
        loop {
            if i == 0 {
                return; // wrapped past the last assignment
            }
            i -= 1;
            self.digits[i] += 1;
            self.mapped += self.mapped_strides[i];
            if self.digits[i] < self.cards[i] {
                return;
            }
            self.mapped -= self.mapped_strides[i] * self.cards[i];
            self.digits[i] = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastbn_bayesnet::VarId;

    fn source() -> Domain {
        // A(2) B(3) C(2) D(2): size 24.
        Domain::new(vec![
            (VarId(0), 2),
            (VarId(1), 3),
            (VarId(2), 2),
            (VarId(3), 2),
        ])
    }

    fn target() -> Domain {
        // B(3) D(2): size 6.
        Domain::new(vec![(VarId(1), 3), (VarId(3), 2)])
    }

    /// Brute-force reference: decode in source, re-encode kept vars in
    /// target.
    fn reference_map(src: &Domain, tgt: &Domain, idx: usize) -> usize {
        let mut states = vec![0usize; src.num_vars()];
        src.decode(idx, &mut states);
        tgt.vars()
            .iter()
            .map(|&v| {
                let pos = src.position_of(v).unwrap();
                states[pos] * tgt.stride_of(v)
            })
            .sum()
    }

    #[test]
    fn embedding_strides_match_reference() {
        let (src, tgt) = (source(), target());
        let strides = embedding_strides(&src, &tgt);
        assert_eq!(strides, vec![0, 2, 0, 1]); // B stride 2, D stride 1 in target
        let mut states = vec![0usize; src.num_vars()];
        for idx in 0..src.size() {
            src.decode(idx, &mut states);
            let mapped: usize = states.iter().zip(&strides).map(|(&s, &st)| s * st).sum();
            assert_eq!(mapped, reference_map(&src, &tgt, idx));
        }
    }

    #[test]
    fn odometer_agrees_with_decode_everywhere() {
        let (src, tgt) = (source(), target());
        let strides = embedding_strides(&src, &tgt);
        let mut odo = Odometer::new(src.cards(), &strides);
        for idx in 0..src.size() {
            assert_eq!(odo.mapped(), reference_map(&src, &tgt, idx), "idx {idx}");
            odo.advance();
        }
        // After wrapping, the odometer is back at 0.
        assert_eq!(odo.mapped(), 0);
    }

    #[test]
    fn odometer_seek_matches_sequential_advance() {
        let (src, tgt) = (source(), target());
        let strides = embedding_strides(&src, &tgt);
        for start in [0usize, 1, 5, 11, 23] {
            let mut seeker = Odometer::new(src.cards(), &strides);
            seeker.seek(start);
            assert_eq!(seeker.mapped(), reference_map(&src, &tgt, start));
            seeker.advance();
            if start + 1 < src.size() {
                assert_eq!(seeker.mapped(), reference_map(&src, &tgt, start + 1));
            }
        }
    }

    #[test]
    fn fiber_offsets_cover_each_source_entry_once() {
        let (src, tgt) = (source(), target());
        let offsets = fiber_offsets(&src, &tgt);
        // |A| * |C| completions.
        assert_eq!(offsets.len(), 4);
        // Ascending order is the determinism contract.
        assert!(offsets.windows(2).all(|w| w[0] < w[1]));

        // base(t) + offsets must partition 0..src.size().
        let base_strides = embedding_strides(&tgt, &src);
        let mut seen = vec![false; src.size()];
        let mut digits = vec![0usize; tgt.num_vars()];
        for t in 0..tgt.size() {
            tgt.decode(t, &mut digits);
            let base: usize = digits.iter().zip(&base_strides).map(|(&d, &s)| d * s).sum();
            for &off in &offsets {
                assert!(!seen[base + off], "source index hit twice");
                seen[base + off] = true;
            }
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn fiber_offsets_of_identity_projection_is_zero() {
        let src = source();
        let offsets = fiber_offsets(&src, &src);
        assert_eq!(offsets, vec![0]);
    }

    #[test]
    fn fiber_offsets_to_scalar_enumerates_everything() {
        let src = source();
        let offsets = fiber_offsets(&src, &Domain::scalar());
        assert_eq!(offsets, (0..src.size()).collect::<Vec<_>>());
    }

    #[test]
    fn materialize_map_matches_odometer() {
        let (src, tgt) = (source(), target());
        let map = materialize_map(&src, &tgt);
        for (idx, &m) in map.iter().enumerate() {
            assert_eq!(m as usize, reference_map(&src, &tgt, idx));
        }
    }

    #[test]
    fn odometer_on_scalar_iter_domain() {
        let scalar = Domain::scalar();
        let tgt = target();
        let strides = embedding_strides(&scalar, &tgt);
        let mut odo = Odometer::new(scalar.cards(), &strides);
        assert_eq!(odo.mapped(), 0);
        odo.advance(); // no digits: stays at 0 without panicking
        assert_eq!(odo.mapped(), 0);
    }
}
