//! Parallel potential-table operations.
//!
//! Every operation parallelizes over **output** entries, so no two tasks
//! ever write the same slot and no atomics are needed on the value arrays.
//! All kernels execute a precompiled [`KernelPlan`]: each chunk pays one
//! `seek` (a single mixed-radix decode) and then streams incrementally —
//! this is the paper's "parallelize the index mapping computations of
//! different potential table entries", minus the per-call stride/fiber
//! recomputation the plans amortize away.
//!
//! The `*_plan_par` / `*_slice_par` functions are the hot-path entry
//! points: they take raw `f64` slices (slab regions) plus a prebuilt plan
//! and allocate nothing. The table-based functions compile a transient
//! plan and delegate — the convenience layer for one-shot callers.
//!
//! The `*_mapped` variants implement the Element engine's two-pass GPU
//! style: pass one materializes the whole index-mapping array, pass two
//! applies it. They produce identical results with more parallel regions
//! and more memory traffic — which is precisely the overhead the paper's
//! hybrid design avoids.
//!
//! fastbn: audited-raw-ptr
//! fastbn: deny-hot-alloc

use fastbn_bayesnet::VarId;
use fastbn_parallel::{Schedule, ThreadPool};

use crate::domain::Domain;
use crate::index_map::{embedding_strides, Odometer};
use crate::ops::safe_div;
use crate::plan::KernelPlan;
use crate::table::{PotentialTable, ZeroSumError};

/// Raw-pointer wrapper allowing disjoint chunks to write a shared output
/// slice. Soundness: callers only ever hand each chunk the sub-slice
/// `[start, end)` it owns, and chunks are disjoint by construction.
struct SharedMut<T>(*mut T);
// SAFETY: sending/sharing the pointer is sound because each chunk
// closure only touches the disjoint `[start, end)` range it is handed
// (see `SharedMut::range`).
unsafe impl<T: Send> Send for SharedMut<T> {}
unsafe impl<T: Send> Sync for SharedMut<T> {}

impl<T> SharedMut<T> {
    #[inline]
    fn get(&self) -> *mut T {
        self.0
    }

    /// # Safety
    /// `[start, end)` must be in bounds and disjoint from every other
    /// concurrently handed-out range (which is why a `&self` receiver can
    /// soundly produce a `&mut` here — exclusivity is established by the
    /// chunk schedule, not the borrow checker).
    #[inline]
    #[allow(clippy::mut_from_ref)]
    unsafe fn range(&self, start: usize, end: usize) -> &mut [T] {
        // SAFETY: in-bounds and disjoint per the caller contract above.
        unsafe { std::slice::from_raw_parts_mut(self.get().add(start), end - start) }
    }
}

/// Parallel plan-based marginalization over raw slices: for each target
/// entry, sums its source fiber in ascending source order (bit-identical
/// to the sequential scan). Allocation-free.
pub fn marginalize_plan_par(
    pool: &ThreadPool,
    sched: Schedule,
    plan: &KernelPlan,
    src: &[f64],
    out: &mut [f64],
) {
    debug_assert_eq!(src.len(), plan.sup_size());
    debug_assert_eq!(out.len(), plan.sub_size());
    let out_ptr = SharedMut(out.as_mut_ptr());
    pool.parallel_for_chunks(0..plan.sub_size(), sched, |start, end| {
        // SAFETY: chunks are disjoint sub-ranges of the output.
        let chunk = unsafe { out_ptr.range(start, end) };
        plan.marginalize_fold(src, start, end, |t, v| chunk[t - start] = v);
    });
}

/// Parallel plan-based extension over raw slices: `table[i] *= msg[m(i)]`.
/// Allocation-free.
pub fn extend_multiply_plan_par(
    pool: &ThreadPool,
    sched: Schedule,
    plan: &KernelPlan,
    table: &mut [f64],
    msg: &[f64],
) {
    debug_assert_eq!(table.len(), plan.sup_size());
    debug_assert_eq!(msg.len(), plan.sub_size());
    let ptr = SharedMut(table.as_mut_ptr());
    pool.parallel_for_chunks(0..plan.sup_size(), sched, |start, end| {
        // SAFETY: chunks are disjoint sub-ranges of the table.
        let chunk = unsafe { ptr.range(start, end) };
        plan.extend_multiply_range(chunk, msg, start);
    });
}

/// Parallel plan-based extension-divide over raw slices with `0/0 = 0`.
/// Allocation-free.
pub fn extend_divide_plan_par(
    pool: &ThreadPool,
    sched: Schedule,
    plan: &KernelPlan,
    table: &mut [f64],
    msg: &[f64],
) {
    debug_assert_eq!(table.len(), plan.sup_size());
    debug_assert_eq!(msg.len(), plan.sub_size());
    let ptr = SharedMut(table.as_mut_ptr());
    pool.parallel_for_chunks(0..plan.sup_size(), sched, |start, end| {
        // SAFETY: chunks are disjoint sub-ranges of the table.
        let chunk = unsafe { ptr.range(start, end) };
        plan.extend_divide_range(chunk, msg, start);
    });
}

/// Parallel fused separator update: `ratio[t] = fresh[t] / sep[t]`
/// (`0/0 = 0`) then `sep[t] = fresh[t]` — the parallel twin of
/// [`crate::ops::sep_update`], bitwise identical to it (every entry is
/// independent and written exactly once).
pub fn sep_update_par(
    pool: &ThreadPool,
    sched: Schedule,
    fresh: &[f64],
    sep: &mut [f64],
    ratio: &mut [f64],
) {
    debug_assert_eq!(fresh.len(), sep.len());
    debug_assert_eq!(fresh.len(), ratio.len());
    let sep_ptr = SharedMut(sep.as_mut_ptr());
    let ratio_ptr = SharedMut(ratio.as_mut_ptr());
    pool.parallel_for_chunks(0..fresh.len(), sched, |start, end| {
        // SAFETY: chunks are disjoint sub-ranges of the sep output.
        let sep_chunk = unsafe { sep_ptr.range(start, end) };
        // SAFETY: likewise disjoint sub-ranges of the ratio output.
        let ratio_chunk = unsafe { ratio_ptr.range(start, end) };
        for ((&f, s), r) in fresh[start..end].iter().zip(sep_chunk).zip(ratio_chunk) {
            *r = safe_div(f, *s);
            *s = f;
        }
    });
}

/// Parallel slice-form reduction: zeroes entries inconsistent with
/// `var = state`, given the variable's stride and cardinality in the
/// slice's domain. One integer division per stride segment, not per
/// entry. Allocation-free.
pub fn reduce_evidence_slice_par(
    pool: &ThreadPool,
    sched: Schedule,
    values: &mut [f64],
    stride: usize,
    card: usize,
    state: usize,
) {
    debug_assert!(state < card);
    let len = values.len();
    let ptr = SharedMut(values.as_mut_ptr());
    pool.parallel_for_chunks(0..len, sched, |start, end| {
        let mut i = start;
        while i < end {
            let seg = i / stride; // which stride segment we are in
            let seg_state = seg % card;
            let seg_end = ((seg + 1) * stride).min(end);
            if seg_state != state {
                // SAFETY: [i, seg_end) ⊆ [start, end), this chunk's range.
                unsafe { ptr.range(i, seg_end) }.fill(0.0);
            }
            i = seg_end;
        }
    });
}

/// Parallel marginalization over tables: compiles a transient plan and
/// delegates to [`marginalize_plan_par`].
pub fn marginalize_into_par(
    pool: &ThreadPool,
    sched: Schedule,
    src: &PotentialTable,
    out: &mut PotentialTable,
) {
    debug_assert!(out.domain().is_subdomain_of(src.domain()));
    let plan = KernelPlan::new(src.domain(), out.domain());
    marginalize_plan_par(pool, sched, &plan, src.values(), out.values_mut());
}

/// Parallel extension over tables: `table[i] *= msg[m(i)]`.
pub fn extend_multiply_par(
    pool: &ThreadPool,
    sched: Schedule,
    table: &mut PotentialTable,
    msg: &PotentialTable,
) {
    debug_assert!(msg.domain().is_subdomain_of(table.domain()));
    let plan = KernelPlan::new(table.domain(), msg.domain());
    extend_multiply_plan_par(pool, sched, &plan, table.values_mut(), msg.values());
}

/// Parallel extension-divide over tables with `0/0 = 0`.
pub fn extend_divide_par(
    pool: &ThreadPool,
    sched: Schedule,
    table: &mut PotentialTable,
    msg: &PotentialTable,
) {
    debug_assert!(msg.domain().is_subdomain_of(table.domain()));
    let plan = KernelPlan::new(table.domain(), msg.domain());
    extend_divide_plan_par(pool, sched, &plan, table.values_mut(), msg.values());
}

/// Parallel same-domain element-wise division (`out = num / den`,
/// `0/0 = 0`): the separator-ratio step.
pub fn divide_into_par(
    pool: &ThreadPool,
    sched: Schedule,
    num: &PotentialTable,
    den: &PotentialTable,
    out: &mut PotentialTable,
) {
    debug_assert_eq!(num.domain().vars(), den.domain().vars());
    debug_assert_eq!(num.domain().vars(), out.domain().vars());
    let n = num.values();
    let d = den.values();
    let ptr = SharedMut(out.values_mut().as_mut_ptr());
    pool.parallel_for_chunks(0..n.len(), sched, |start, end| {
        // SAFETY: chunks are disjoint sub-ranges of the output.
        let chunk = unsafe { ptr.range(start, end) };
        for (i, o) in (start..end).zip(chunk) {
            *o = safe_div(n[i], d[i]);
        }
    });
}

/// Parallel reduction over tables: zeroes entries inconsistent with
/// `var = state`.
pub fn reduce_evidence_par(
    pool: &ThreadPool,
    sched: Schedule,
    table: &mut PotentialTable,
    var: VarId,
    state: usize,
) {
    let stride = table.domain().stride_of(var);
    let card = table.domain().card_of(var);
    reduce_evidence_slice_par(pool, sched, table.values_mut(), stride, card, state);
}

/// Parallel sum of all entries (chunk-ordered fold: deterministic across
/// thread counts under a `Dynamic` schedule).
pub fn sum_par(pool: &ThreadPool, sched: Schedule, table: &PotentialTable) -> f64 {
    let values = table.values();
    pool.parallel_reduce(
        0..values.len(),
        sched,
        0.0,
        |s, e| values[s..e].iter().sum::<f64>(),
        |a, b| a + b,
    )
}

/// Parallel normalization; returns the pre-normalization sum.
pub fn normalize_par(
    pool: &ThreadPool,
    sched: Schedule,
    table: &mut PotentialTable,
) -> Result<f64, ZeroSumError> {
    let sum = sum_par(pool, sched, table);
    if sum <= 0.0 || !sum.is_finite() {
        return Err(ZeroSumError);
    }
    let inv = 1.0 / sum;
    let len = table.len();
    let ptr = SharedMut(table.values_mut().as_mut_ptr());
    pool.parallel_for_chunks(0..len, sched, |start, end| {
        // SAFETY: chunks are disjoint sub-ranges of the table.
        for v in unsafe { ptr.range(start, end) } {
            *v *= inv;
        }
    });
    Ok(sum)
}

/// Element-engine pass 1: materializes the full `iter_domain → target`
/// index-mapping array in parallel.
// fastbn: allow(hot-alloc): pass-one map materialization — the Element
// engine's per-network precompute, not a per-query path.
pub fn materialize_map_par(
    pool: &ThreadPool,
    sched: Schedule,
    iter_domain: &Domain,
    target: &Domain,
) -> Vec<u32> {
    assert!(
        target.size() <= u32::MAX as usize,
        "mapping table exceeds u32 index range"
    );
    let strides = embedding_strides(iter_domain, target);
    let mut map = vec![0u32; iter_domain.size()];
    let ptr = SharedMut(map.as_mut_ptr());
    pool.parallel_for_chunks(0..iter_domain.size(), sched, |start, end| {
        let mut odo = Odometer::new(iter_domain.cards(), &strides);
        odo.seek(start);
        // SAFETY: chunks are disjoint sub-ranges of the map.
        let chunk = unsafe { ptr.range(start, end) };
        for slot in chunk {
            *slot = odo.mapped() as u32;
            odo.advance();
        }
    });
    map
}

/// Element-engine pass 2 (extension) over raw slices:
/// `table[i] *= msg[map[i]]`. Allocation-free.
pub fn extend_multiply_mapped_slice_par(
    pool: &ThreadPool,
    sched: Schedule,
    table: &mut [f64],
    msg: &[f64],
    map: &[u32],
) {
    debug_assert_eq!(map.len(), table.len());
    let len = table.len();
    let ptr = SharedMut(table.as_mut_ptr());
    pool.parallel_for_chunks(0..len, sched, |start, end| {
        // SAFETY: chunks are disjoint sub-ranges of the table.
        let chunk = unsafe { ptr.range(start, end) };
        for (i, v) in (start..end).zip(chunk) {
            *v *= msg[map[i] as usize];
        }
    });
}

/// Element-engine pass 2 (extension) over tables.
pub fn extend_multiply_mapped_par(
    pool: &ThreadPool,
    sched: Schedule,
    table: &mut PotentialTable,
    msg: &PotentialTable,
    map: &[u32],
) {
    extend_multiply_mapped_slice_par(pool, sched, table.values_mut(), msg.values(), map);
}

/// Element-engine pass 2 (marginalization) over raw slices:
/// `out[t] = Σ_f src[bases[t] + fibers[f]]`, with `bases` produced by
/// [`materialize_map_par`] over `(target → source)`. Allocation-free.
pub fn marginalize_mapped_slice_par(
    pool: &ThreadPool,
    sched: Schedule,
    src: &[f64],
    out: &mut [f64],
    bases: &[u32],
    fibers: &[usize],
) {
    debug_assert_eq!(bases.len(), out.len());
    let len = out.len();
    let ptr = SharedMut(out.as_mut_ptr());
    pool.parallel_for_chunks(0..len, sched, |start, end| {
        // SAFETY: chunks are disjoint sub-ranges of the output.
        let chunk = unsafe { ptr.range(start, end) };
        for (t, slot) in (start..end).zip(chunk) {
            let base = bases[t] as usize;
            let mut acc = 0.0;
            for &off in fibers {
                acc += src[base + off];
            }
            *slot = acc;
        }
    });
}

/// Element-engine pass 2 (marginalization) over tables.
pub fn marginalize_mapped_par(
    pool: &ThreadPool,
    sched: Schedule,
    src: &PotentialTable,
    out: &mut PotentialTable,
    bases: &[u32],
    fibers: &[usize],
) {
    marginalize_mapped_slice_par(pool, sched, src.values(), out.values_mut(), bases, fibers);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index_map::{fiber_offsets, materialize_map};
    use crate::ops;
    use std::sync::Arc;

    fn dom(pairs: &[(u32, usize)]) -> Arc<Domain> {
        Arc::new(Domain::new(
            pairs.iter().map(|&(v, c)| (VarId(v), c)).collect(),
        ))
    }

    fn pseudo_random_table(domain: Arc<Domain>, seed: u64) -> PotentialTable {
        // Tiny xorshift so this test has no RNG dependency.
        let mut state = seed.wrapping_mul(2685821657736338717).max(1);
        let values: Vec<f64> = (0..domain.size())
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state % 1000) as f64 / 1000.0
            })
            .collect();
        PotentialTable::from_values(domain, values)
    }

    fn pools() -> Vec<ThreadPool> {
        vec![ThreadPool::new(1), ThreadPool::new(2), ThreadPool::new(4)]
    }

    fn schedules() -> Vec<Schedule> {
        vec![
            Schedule::Static,
            Schedule::Dynamic { grain: 1 },
            Schedule::Dynamic { grain: 7 },
            Schedule::Dynamic { grain: 4096 },
        ]
    }

    #[test]
    fn marginalize_par_is_bit_identical_to_seq() {
        let src = pseudo_random_table(dom(&[(0, 3), (1, 2), (2, 4), (3, 2)]), 1);
        let tgt = dom(&[(1, 2), (3, 2)]);
        let mut expected = PotentialTable::zeros(tgt.clone());
        ops::marginalize_into(&src, &mut expected);
        for pool in pools() {
            for sched in schedules() {
                let mut got = PotentialTable::zeros(tgt.clone());
                marginalize_into_par(&pool, sched, &src, &mut got);
                assert_eq!(got.values(), expected.values(), "{sched:?}");
            }
        }
    }

    #[test]
    fn extend_multiply_par_is_bit_identical_to_seq() {
        let base = pseudo_random_table(dom(&[(0, 2), (1, 3), (2, 2)]), 2);
        let msg = pseudo_random_table(dom(&[(1, 3)]), 3);
        let mut expected = base.clone();
        ops::extend_multiply(&mut expected, &msg);
        for pool in pools() {
            for sched in schedules() {
                let mut got = base.clone();
                extend_multiply_par(&pool, sched, &mut got, &msg);
                assert_eq!(got.values(), expected.values(), "{sched:?}");
            }
        }
    }

    #[test]
    fn extend_divide_par_matches_seq_including_zeros() {
        let d = dom(&[(0, 2), (1, 2)]);
        let md = dom(&[(0, 2)]);
        let base = PotentialTable::from_values(d, vec![0.0, 0.0, 4.0, 6.0]);
        let msg = PotentialTable::from_values(md, vec![0.0, 2.0]);
        let mut expected = base.clone();
        ops::extend_divide(&mut expected, &msg);
        let pool = ThreadPool::new(4);
        let mut got = base.clone();
        extend_divide_par(&pool, Schedule::Dynamic { grain: 1 }, &mut got, &msg);
        assert_eq!(got.values(), expected.values());
    }

    #[test]
    fn divide_into_par_matches_seq() {
        let d = dom(&[(0, 4), (1, 3)]);
        let num = pseudo_random_table(d.clone(), 4);
        let mut den = pseudo_random_table(d.clone(), 5);
        den.values_mut()[0] = 0.0; // force a 0/x and pair it with 0 num
        let mut num = num;
        num.values_mut()[0] = 0.0;
        let mut expected = PotentialTable::zeros(d.clone());
        ops::divide_into(&num, &den, &mut expected);
        for pool in pools() {
            let mut got = PotentialTable::zeros(d.clone());
            divide_into_par(&pool, Schedule::Static, &num, &den, &mut got);
            assert_eq!(got.values(), expected.values());
        }
    }

    #[test]
    fn sep_update_par_matches_seq() {
        let n = 37usize;
        let fresh: Vec<f64> = (0..n)
            .map(|i| if i % 5 == 0 { 0.0 } else { i as f64 })
            .collect();
        let sep0: Vec<f64> = (0..n)
            .map(|i| if i % 5 == 0 { 0.0 } else { (i + 2) as f64 })
            .collect();
        let mut seq_sep = sep0.clone();
        let mut seq_ratio = vec![f64::NAN; n];
        ops::sep_update(&fresh, &mut seq_sep, &mut seq_ratio);
        for pool in pools() {
            for sched in schedules() {
                let mut sep = sep0.clone();
                let mut ratio = vec![f64::NAN; n];
                sep_update_par(&pool, sched, &fresh, &mut sep, &mut ratio);
                assert_eq!(sep, seq_sep, "{sched:?}");
                assert_eq!(ratio, seq_ratio, "{sched:?}");
            }
        }
    }

    #[test]
    fn reduce_evidence_par_matches_seq() {
        for (var, state) in [(VarId(0), 1usize), (VarId(1), 0), (VarId(2), 3)] {
            let d = dom(&[(0, 2), (1, 3), (2, 4)]);
            let base = pseudo_random_table(d, 6);
            let mut expected = base.clone();
            ops::reduce_evidence(&mut expected, var, state);
            for pool in pools() {
                for sched in schedules() {
                    let mut got = base.clone();
                    reduce_evidence_par(&pool, sched, &mut got, var, state);
                    assert_eq!(got.values(), expected.values(), "{var} {sched:?}");
                }
            }
        }
    }

    #[test]
    fn sum_and_normalize_par() {
        let d = dom(&[(0, 5), (1, 5)]);
        let base = pseudo_random_table(d, 7);
        let pool = ThreadPool::new(4);
        let sched = Schedule::Dynamic { grain: 3 };
        let total = sum_par(&pool, sched, &base);
        // Chunk-ordered fold must equal the same chunking sequentially.
        let seq_chunked: f64 = (0..base.len())
            .step_by(3)
            .map(|s| {
                base.values()[s..(s + 3).min(base.len())]
                    .iter()
                    .sum::<f64>()
            })
            .sum();
        assert_eq!(total, seq_chunked);

        let mut t = base.clone();
        let z = normalize_par(&pool, sched, &mut t).unwrap();
        assert_eq!(z, total);
        assert!((t.sum() - 1.0).abs() < 1e-12);

        let mut zero = PotentialTable::zeros(dom(&[(0, 3)]));
        assert_eq!(normalize_par(&pool, sched, &mut zero), Err(ZeroSumError));
    }

    #[test]
    fn materialize_map_par_matches_seq() {
        let sup = dom(&[(0, 3), (1, 2), (2, 2)]);
        let sub = dom(&[(0, 3), (2, 2)]);
        let expected = materialize_map(&sup, &sub);
        for pool in pools() {
            let got = materialize_map_par(&pool, Schedule::Dynamic { grain: 2 }, &sup, &sub);
            assert_eq!(got, expected);
        }
    }

    #[test]
    fn mapped_extension_and_marginalization_match_direct() {
        let sup = dom(&[(0, 2), (1, 3), (2, 2), (3, 2)]);
        let sub = dom(&[(1, 3), (3, 2)]);
        let src = pseudo_random_table(sup.clone(), 8);
        let msg = pseudo_random_table(sub.clone(), 9);
        let pool = ThreadPool::new(4);
        let sched = Schedule::Dynamic { grain: 5 };

        // Extension via mapping table.
        let mut direct = src.clone();
        ops::extend_multiply(&mut direct, &msg);
        let map = materialize_map_par(&pool, sched, &sup, &sub);
        let mut mapped = src.clone();
        extend_multiply_mapped_par(&pool, sched, &mut mapped, &msg, &map);
        assert_eq!(mapped.values(), direct.values());

        // Marginalization via base mapping + fibers.
        let mut expect = PotentialTable::zeros(sub.clone());
        ops::marginalize_into(&src, &mut expect);
        let bases = materialize_map_par(&pool, sched, &sub, &sup);
        let fibers = fiber_offsets(&sup, &sub);
        let mut got = PotentialTable::zeros(sub);
        marginalize_mapped_par(&pool, sched, &src, &mut got, &bases, &fibers);
        assert_eq!(got.values(), expect.values());
    }

    #[test]
    fn plan_par_entry_points_match_table_forms() {
        let sup = dom(&[(0, 3), (1, 2), (2, 2), (3, 3)]);
        let sub = dom(&[(1, 2), (2, 2)]);
        let plan = KernelPlan::new(&sup, &sub);
        let src = pseudo_random_table(sup.clone(), 10);
        let msg = pseudo_random_table(sub.clone(), 11);
        let pool = ThreadPool::new(4);
        let sched = Schedule::Dynamic { grain: 3 };

        let mut expect_marg = PotentialTable::zeros(sub.clone());
        ops::marginalize_into(&src, &mut expect_marg);
        let mut got = vec![f64::NAN; sub.size()];
        marginalize_plan_par(&pool, sched, &plan, src.values(), &mut got);
        assert_eq!(&got[..], expect_marg.values());

        let mut expect_mul = src.clone();
        ops::extend_multiply(&mut expect_mul, &msg);
        let mut table = src.values().to_vec();
        extend_multiply_plan_par(&pool, sched, &plan, &mut table, msg.values());
        assert_eq!(&table[..], expect_mul.values());

        let mut expect_div = src.clone();
        ops::extend_divide(&mut expect_div, &msg);
        let mut table = src.values().to_vec();
        extend_divide_plan_par(&pool, sched, &plan, &mut table, msg.values());
        assert_eq!(&table[..], expect_div.values());
    }
}
