//! # fastbn-potential
//!
//! Potential tables over discrete variable domains, plus the three
//! "dominant potential table operations" the Fast-BNI paper identifies and
//! parallelizes (§2): **marginalization**, **extension** (multiply a
//! smaller-domain message into a larger-domain table), and **reduction**
//! (zero out entries inconsistent with evidence).
//!
//! The paper's "key step ... is to find the index mappings between the
//! original and the updated tables"; [`index_map`] implements those
//! mappings three ways, matching the engines that consume them:
//!
//! * incremental **odometers** (constant amortized work per entry) for the
//!   optimized sequential engine,
//! * **chunk-local odometers** seeded by one mixed-radix decode per chunk
//!   for the parallel engines, and
//! * fully **materialized mapping arrays** for the Element engine, which
//!   reproduces the GPU design of precomputing mapping tables.
//!
//! All three consume precompiled [`plan::KernelPlan`]s: one plan per
//! (source, target) domain pair holds the strides, fiber offsets, and a
//! layout classification selecting blocked fast paths when the mapped
//! variables form a contiguous inner or outer block — compiled once,
//! executed allocation-free.
//!
//! Sequential ops live in [`ops`], parallel ops (driven by a
//! [`fastbn_parallel::ThreadPool`] + [`fastbn_parallel::Schedule`]) in
//! [`ops_par`]. Parallel results are bit-identical to sequential ones: for
//! every output entry, contributions are accumulated in ascending source
//! index order in both paths (DESIGN.md §6). Where these operations sit
//! in the full stack is mapped in `docs/ARCHITECTURE.md` at the
//! repository root.

// Every unsafe operation inside an `unsafe fn` must sit in its own
// `unsafe {}` block with a SAFETY comment (enforced by fastbn-analyze
// FB-L1 plus this lint).
#![deny(unsafe_op_in_unsafe_fn)]

pub mod domain;
pub mod index_map;
pub mod ops;
pub mod ops_par;
pub mod plan;
pub mod table;

pub use domain::Domain;
pub use index_map::{embedding_strides, fiber_offsets, Odometer};
pub use plan::{multiply_marginalize, KernelPlan, Layout};
pub use table::PotentialTable;
