//! Sequential potential-table operations.
//!
//! These are the "simplified bottleneck operations" of Fast-BNI-seq. Each
//! table-level entry point compiles a transient [`KernelPlan`] for its
//! (source, target) domain pair and executes it — one walk, no per-entry
//! decode. Hot paths that run the same pair repeatedly (propagation) hold
//! precompiled plans instead and call the plan kernels directly; these
//! functions are the convenience layer for one-shot callers (preparation,
//! oracles, tests).
//!
//! fastbn: deny-hot-alloc

use crate::domain::Domain;
use crate::index_map::embedding_strides;
use crate::plan::KernelPlan;
use crate::table::PotentialTable;
use fastbn_bayesnet::VarId;

/// Marginalizes `src` onto `out`'s (sub)domain, overwriting `out`:
/// `out[m(i)] += src[i]` starting from zeros.
///
/// For each output entry, contributions arrive in ascending source index —
/// the same order the parallel fiber sums use, so results are bit-identical
/// across all engines.
pub fn marginalize_into(src: &PotentialTable, out: &mut PotentialTable) {
    debug_assert!(out.domain().is_subdomain_of(src.domain()));
    let plan = KernelPlan::new(src.domain(), out.domain());
    plan.marginalize(src.values(), out.values_mut());
}

/// Allocating variant of [`marginalize_into`].
pub fn marginalize(src: &PotentialTable, target: std::sync::Arc<Domain>) -> PotentialTable {
    let mut out = PotentialTable::zeros(target);
    marginalize_into(src, &mut out);
    out
}

/// The paper's **extension** primitive: multiplies a smaller-domain
/// message into a larger-domain table, `table[i] *= msg[m(i)]`.
pub fn extend_multiply(table: &mut PotentialTable, msg: &PotentialTable) {
    debug_assert!(msg.domain().is_subdomain_of(table.domain()));
    // The plan borrows the domain only during compilation, so no `Arc`
    // refcount bump is needed to appease the borrow checker.
    let plan = KernelPlan::new(table.domain(), msg.domain());
    plan.extend_multiply(table.values_mut(), msg.values());
}

/// Like [`extend_multiply`] but dividing, with the Hugin convention
/// `0 / 0 = 0` (a zero in the denominator can only ever be paired with a
/// zero numerator during propagation).
pub fn extend_divide(table: &mut PotentialTable, msg: &PotentialTable) {
    debug_assert!(msg.domain().is_subdomain_of(table.domain()));
    let plan = KernelPlan::new(table.domain(), msg.domain());
    plan.extend_divide(table.values_mut(), msg.values());
}

/// Element-wise `num[i] / den[i]` written into `out[i]`, all on the same
/// domain, with `0 / 0 = 0`. This is the separator-update step of Hugin
/// propagation (`ratio = new_sep / old_sep`).
pub fn divide_into(num: &PotentialTable, den: &PotentialTable, out: &mut PotentialTable) {
    debug_assert_eq!(num.domain().vars(), den.domain().vars());
    debug_assert_eq!(num.domain().vars(), out.domain().vars());
    let out_values = out.values_mut();
    for (o, (&n, &d)) in out_values
        .iter_mut()
        .zip(num.values().iter().zip(den.values()))
    {
        *o = safe_div(n, d);
    }
}

/// The fused Hugin separator update: given the freshly marginalized
/// message, computes the `new/old` ratio and installs the new separator in
/// one pass — `ratio[t] = fresh[t] / sep[t]` (with `0/0 = 0`), then
/// `sep[t] = fresh[t]`. Values are bitwise identical to the historical
/// divide-then-swap sequence; only the table shuffling is gone.
pub fn sep_update(fresh: &[f64], sep: &mut [f64], ratio: &mut [f64]) {
    debug_assert_eq!(fresh.len(), sep.len());
    debug_assert_eq!(fresh.len(), ratio.len());
    for ((&f, s), r) in fresh.iter().zip(sep).zip(ratio) {
        *r = safe_div(f, *s);
        *s = f;
    }
}

/// The ratio-forming half of [`sep_update`] against a **saved** separator:
/// `msg[t] = msg[t] / saved[t]` in place (with `0/0 = 0`), leaving `saved`
/// untouched. Incremental re-propagation keeps each separator's collect
/// message in a saved slab region that later delta updates still need, so
/// the distribute ratio must fold into the fresh message rather than
/// overwrite the divisor. The quotient bits are identical to
/// [`sep_update`]'s `ratio` output — same [`safe_div`], same operands —
/// only the destination differs.
pub fn sep_ratio(msg: &mut [f64], saved: &[f64]) {
    debug_assert_eq!(msg.len(), saved.len());
    for (m, &s) in msg.iter_mut().zip(saved) {
        *m = safe_div(*m, s);
    }
}

/// Element-wise multiply of two same-domain tables.
pub fn multiply_into(table: &mut PotentialTable, other: &PotentialTable) {
    debug_assert_eq!(table.domain().vars(), other.domain().vars());
    for (a, &b) in table.values_mut().iter_mut().zip(other.values()) {
        *a *= b;
    }
}

/// The paper's **reduction** primitive: zeroes every entry inconsistent
/// with the observation `var = state`, leaving the table size unchanged
/// (as in FastBN).
///
/// Walks the table as `blocks × card × stride`, touching only the
/// mismatching slices — contiguous writes, no index decoding at all.
pub fn reduce_evidence(table: &mut PotentialTable, var: VarId, state: usize) {
    let stride = table.domain().stride_of(var);
    let card = table.domain().card_of(var);
    reduce_evidence_slice(table.values_mut(), stride, card, state);
}

/// Slice form of [`reduce_evidence`] for tables living in a slab: zeroes
/// every entry whose `(i / stride) % card != state`, walking contiguous
/// stride segments.
pub fn reduce_evidence_slice(values: &mut [f64], stride: usize, card: usize, state: usize) {
    debug_assert!(state < card);
    let block = stride * card;
    let len = values.len();
    let mut base = 0;
    while base < len {
        for s in 0..card {
            if s != state {
                values[base + s * stride..base + (s + 1) * stride].fill(0.0);
            }
        }
        base += block;
    }
}

/// Single-variable marginal of a table: sums all entries by the state of
/// `var`. Returns a vector of length `card(var)` (unnormalized).
pub fn marginal_of_var(table: &PotentialTable, var: VarId) -> Vec<f64> {
    marginal_of_var_slice(table.values(), table.domain(), var)
}

/// Slice form of [`marginal_of_var`] for tables living in a slab.
// fastbn: allow(hot-alloc): allocating convenience form; hot paths use
// `marginal_of_var_into`.
pub fn marginal_of_var_slice(values: &[f64], domain: &Domain, var: VarId) -> Vec<f64> {
    let mut out = vec![0.0; domain.card_of(var)];
    marginal_of_var_into(values, domain, var, &mut out);
    out
}

/// Allocation-free form of [`marginal_of_var_slice`]: accumulates the
/// unnormalized marginal into a caller-provided buffer of length
/// `card(var)` (overwritten, not added to). This is the steady-state
/// monitored-read primitive of the incremental re-propagation path.
pub fn marginal_of_var_into(values: &[f64], domain: &Domain, var: VarId, out: &mut [f64]) {
    let stride = domain.stride_of(var);
    let card = domain.card_of(var);
    debug_assert_eq!(out.len(), card);
    out.fill(0.0);
    let block = stride * card;
    let mut base = 0;
    while base < values.len() {
        for (s, slot) in out.iter_mut().enumerate() {
            let start = base + s * stride;
            // Element-by-element accumulation (not a per-segment partial
            // sum) so the f64 addition chain per state is identical to a
            // flat ascending-index scan — the bit-identity contract every
            // engine's extraction relies on.
            for &v in &values[start..start + stride] {
                *slot += v;
            }
        }
        base += block;
    }
}

/// Max-marginalization: like [`marginalize_into`] but taking the maximum
/// over each fiber instead of the sum — the core of max-product (MPE)
/// propagation.
pub fn max_marginalize_into(src: &PotentialTable, out: &mut PotentialTable) {
    debug_assert!(out.domain().is_subdomain_of(src.domain()));
    let plan = KernelPlan::new(src.domain(), out.domain());
    plan.max_marginalize(src.values(), out.values_mut());
}

/// Max-marginal of a single variable: `out[s] = max { table[i] :
/// state_of(i, var) = s }`.
// fastbn: allow(hot-alloc): allocating convenience form (MPE read path).
pub fn max_marginal_of_var(table: &PotentialTable, var: VarId) -> Vec<f64> {
    let stride = table.domain().stride_of(var);
    let card = table.domain().card_of(var);
    let values = table.values();
    let mut out = vec![f64::NEG_INFINITY; card];
    let block = stride * card;
    let mut base = 0;
    while base < values.len() {
        for (s, slot) in out.iter_mut().enumerate() {
            let start = base + s * stride;
            for &v in &values[start..start + stride] {
                if v > *slot {
                    *slot = v;
                }
            }
        }
        base += block;
    }
    out
}

/// Division with the Hugin `0/0 = 0` convention.
#[inline]
pub fn safe_div(n: f64, d: f64) -> f64 {
    if d == 0.0 {
        debug_assert_eq!(n, 0.0, "nonzero / zero encountered in propagation");
        0.0
    } else {
        n / d
    }
}

/// Precomputed strides of `sub` inside `sup`, for callers that run the
/// extension mapping manually (the hybrid engine's flattened loops).
pub fn extension_strides(sup: &Domain, sub: &Domain) -> Vec<usize> {
    embedding_strides(sup, sub)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn dom(pairs: &[(u32, usize)]) -> Arc<Domain> {
        Arc::new(Domain::new(
            pairs.iter().map(|&(v, c)| (VarId(v), c)).collect(),
        ))
    }

    /// Brute-force marginalization via full decode, for cross-checking.
    fn marginalize_reference(src: &PotentialTable, target: &Arc<Domain>) -> Vec<f64> {
        let mut out = vec![0.0; target.size()];
        let mut states = vec![0usize; src.domain().num_vars()];
        for i in 0..src.len() {
            src.domain().decode(i, &mut states);
            let t: usize = target
                .vars()
                .iter()
                .map(|&v| {
                    let pos = src.domain().position_of(v).unwrap();
                    states[pos] * target.stride_of(v)
                })
                .sum();
            out[t] += src.values()[i];
        }
        out
    }

    fn ramp_table(domain: Arc<Domain>) -> PotentialTable {
        let values: Vec<f64> = (0..domain.size()).map(|i| (i + 1) as f64).collect();
        PotentialTable::from_values(domain, values)
    }

    #[test]
    fn marginalize_matches_reference() {
        let src_dom = dom(&[(0, 2), (1, 3), (2, 2), (4, 2)]);
        let src = ramp_table(src_dom);
        for target_vars in [vec![(1u32, 3usize)], vec![(0, 2), (2, 2)], vec![(4, 2)]] {
            let tgt = dom(&target_vars);
            let got = marginalize(&src, tgt.clone());
            assert_eq!(got.values(), marginalize_reference(&src, &tgt).as_slice());
        }
    }

    #[test]
    fn marginalize_to_same_domain_is_identity() {
        let d = dom(&[(0, 2), (1, 2)]);
        let src = ramp_table(d.clone());
        let got = marginalize(&src, d);
        assert_eq!(got.values(), src.values());
    }

    #[test]
    fn marginalize_to_scalar_is_total_sum() {
        let src = ramp_table(dom(&[(0, 3), (1, 4)]));
        let got = marginalize(&src, Arc::new(Domain::scalar()));
        assert_eq!(got.values(), &[src.sum()]);
    }

    #[test]
    fn marginalization_order_independence() {
        // Summing out B then C equals summing out {B, C} directly.
        let src = ramp_table(dom(&[(0, 2), (1, 3), (2, 4)]));
        let mid = marginalize(&src, dom(&[(0, 2), (2, 4)]));
        let two_step = marginalize(&mid, dom(&[(0, 2)]));
        let one_step = marginalize(&src, dom(&[(0, 2)]));
        for (a, b) in two_step.values().iter().zip(one_step.values()) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn extend_multiply_matches_pointwise_definition() {
        let cd = dom(&[(0, 2), (1, 3)]);
        let md = dom(&[(1, 3)]);
        let mut clique = ramp_table(cd.clone());
        let msg = PotentialTable::from_values(md, vec![2.0, 0.5, 1.0]);
        extend_multiply(&mut clique, &msg);
        for s0 in 0..2 {
            for s1 in 0..3 {
                let original = (cd.index_of(&[s0, s1]) + 1) as f64;
                assert_eq!(clique.value_at(&[s0, s1]), original * msg.values()[s1]);
            }
        }
    }

    #[test]
    fn extend_then_marginalize_roundtrip() {
        // ones(sup) *= msg, then marginalize back to msg's domain:
        // every msg entry is multiplied by |sup| / |msg| (the fiber size).
        let sup = dom(&[(0, 2), (1, 3), (2, 2)]);
        let sub = dom(&[(1, 3)]);
        let msg = PotentialTable::from_values(sub.clone(), vec![0.2, 0.3, 0.5]);
        let mut table = PotentialTable::ones(sup.clone());
        extend_multiply(&mut table, &msg);
        let back = marginalize(&table, sub);
        let fiber = (sup.size() / 3) as f64;
        for (b, m) in back.values().iter().zip(msg.values()) {
            assert!((b - m * fiber).abs() < 1e-12);
        }
    }

    #[test]
    fn divide_handles_zero_over_zero() {
        let d = dom(&[(0, 2)]);
        let num = PotentialTable::from_values(d.clone(), vec![0.0, 0.6]);
        let den = PotentialTable::from_values(d.clone(), vec![0.0, 0.3]);
        let mut out = PotentialTable::zeros(d);
        divide_into(&num, &den, &mut out);
        assert_eq!(out.values()[0], 0.0);
        assert!((out.values()[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn extend_divide_matches_divide_semantics() {
        let cd = dom(&[(0, 2), (1, 2)]);
        let md = dom(&[(0, 2)]);
        let mut t = PotentialTable::from_values(cd, vec![0.0, 0.0, 4.0, 6.0]);
        let msg = PotentialTable::from_values(md, vec![0.0, 2.0]);
        extend_divide(&mut t, &msg);
        assert_eq!(t.values(), &[0.0, 0.0, 2.0, 3.0]);
    }

    #[test]
    fn reduce_evidence_zeroes_inconsistent_entries() {
        let d = dom(&[(0, 2), (1, 3)]);
        let mut t = ramp_table(d.clone());
        reduce_evidence(&mut t, VarId(1), 2);
        for s0 in 0..2 {
            for s1 in 0..3 {
                let v = t.value_at(&[s0, s1]);
                if s1 == 2 {
                    assert_eq!(v, (d.index_of(&[s0, s1]) + 1) as f64);
                } else {
                    assert_eq!(v, 0.0);
                }
            }
        }
        // Reduction then marginalization = slicing.
        let m = marginal_of_var(&t, VarId(1));
        assert_eq!(m[0], 0.0);
        assert_eq!(m[1], 0.0);
        assert!(m[2] > 0.0);
    }

    #[test]
    fn reduce_on_fastest_and_slowest_vars() {
        let d = dom(&[(0, 3), (1, 2)]);
        let mut slow = ramp_table(d.clone());
        reduce_evidence(&mut slow, VarId(0), 1); // slowest (stride 2)
        for s0 in 0..3 {
            for s1 in 0..2 {
                assert_eq!(slow.value_at(&[s0, s1]) != 0.0, s0 == 1);
            }
        }
        let mut fast = ramp_table(d);
        reduce_evidence(&mut fast, VarId(1), 0); // fastest (stride 1)
        for s0 in 0..3 {
            assert!(fast.value_at(&[s0, 0]) != 0.0);
            assert_eq!(fast.value_at(&[s0, 1]), 0.0);
        }
    }

    #[test]
    fn marginal_of_var_matches_full_marginalize() {
        let src = ramp_table(dom(&[(0, 2), (1, 3), (2, 2)]));
        let quick = marginal_of_var(&src, VarId(1));
        let full = marginalize(&src, dom(&[(1, 3)]));
        assert_eq!(quick.as_slice(), full.values());
    }

    #[test]
    fn multiply_into_same_domain() {
        let d = dom(&[(0, 2)]);
        let mut a = PotentialTable::from_values(d.clone(), vec![2.0, 3.0]);
        let b = PotentialTable::from_values(d, vec![0.5, 2.0]);
        multiply_into(&mut a, &b);
        assert_eq!(a.values(), &[1.0, 6.0]);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "nonzero / zero")]
    fn nonzero_over_zero_asserts_in_debug() {
        safe_div(1.0, 0.0);
    }
}
