//! Precompiled kernel plans: everything the table ops of [`crate::ops`]
//! used to re-derive per call — embedding strides, fiber offsets, and a
//! layout classification — computed **once** per (source domain, target
//! domain) pair and replayed allocation-free ever after.
//!
//! A [`KernelPlan`] is directional: it maps a *superdomain* table (the
//! clique) onto a *subdomain* table (the separator or message). One plan
//! serves every op over that pair — marginalization, max-marginalization,
//! extension-multiply/divide, and the fused collect kernel
//! [`multiply_marginalize`].
//!
//! # Layout taxonomy
//!
//! Domains are row-major with the **last** (highest-id) variable fastest,
//! and variable lists are strictly ascending. That makes two common cases
//! detectable from the variable lists alone:
//!
//! * [`Layout::InnerBlock`] — the subdomain's variables are exactly the
//!   *suffix* (fastest block) of the superdomain. The mapped index is
//!   `i % sub_size`, so marginalization is a blocked stride-1 sum
//!   (`out[t] += src[b·sub + t]`, autovectorizable) and extension is a
//!   per-block element-wise multiply.
//! * [`Layout::OuterBlock`] — the subdomain's variables are exactly the
//!   *prefix* (slowest block). The mapped index is `i / fiber_len`, so
//!   marginalization sums contiguous slices and extension broadcasts one
//!   scalar per slice.
//! * [`Layout::Identity`] — same domain: copy / element-wise.
//! * [`Layout::Generic`] — scattered variables: incremental odometer
//!   stepping, with the digit array held **inline on the stack** so the
//!   generic path allocates nothing either.
//!
//! # Bit-identity
//!
//! Every fast path preserves the repo-wide determinism contract: each
//! output slot's f64 addition chain visits its source entries in ascending
//! source index. For `InnerBlock`, the blocked loop adds `src[b·sub + t]`
//! to `out[t]` in ascending `b` — exactly the ascending fiber order of the
//! generic path. For `OuterBlock`, the contiguous slice sum is literally
//! the ascending-source scan. Extension writes each entry exactly once, so
//! only the product operands matter, and they are identical across paths.
//!
//! fastbn: deny-hot-alloc

use crate::domain::Domain;
use crate::index_map::{embedding_strides, fiber_offsets};
use crate::ops::safe_div;

/// Upper bound on superdomain variables for the inline odometer digits.
/// A table over more than 32 discrete variables has at least 2³³ entries
/// (≥ 64 GiB of f64), far beyond anything this engine targets, so the
/// bound is enforced with a hard assert rather than a heap fallback.
pub const MAX_PLAN_VARS: usize = 32;

/// How the subdomain's variables sit inside the superdomain's memory
/// layout — selects the kernel fast path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Layout {
    /// Sub and sup are the same domain: marginalize = copy, extend =
    /// element-wise.
    Identity,
    /// Sub is the fastest-varying (suffix) block: `mapped(i) = i % sub`.
    InnerBlock,
    /// Sub is the slowest-varying (prefix) block: `mapped(i) = i / fiber`,
    /// with `fiber = sup_size / sub_size` consecutive entries per slot.
    OuterBlock {
        /// Number of consecutive superdomain entries sharing one
        /// subdomain slot.
        fiber_len: usize,
    },
    /// Scattered variables: incremental mixed-radix odometer stepping.
    Generic,
}

/// A precompiled (superdomain → subdomain) index mapping with all derived
/// arrays and the layout classification. Build once (allocates), execute
/// forever (allocation-free).
#[derive(Debug, Clone)]
pub struct KernelPlan {
    /// Cardinalities of the superdomain (odometer radices).
    sup_cards: Box<[usize]>,
    /// Cardinalities of the subdomain (output-walk radices).
    sub_cards: Box<[usize]>,
    /// Per-sup-variable stride in the subdomain (0 if absent): walking the
    /// sup with these yields `mapped(i)` — the extension mapping.
    ext_strides: Box<[usize]>,
    /// Per-sub-variable stride in the superdomain: walking the sub with
    /// these yields each output slot's base source index.
    base_strides: Box<[usize]>,
    /// Ascending source offsets of the summed-out completions; each output
    /// slot's value is `Σ src[base + fibers[k]]`.
    fibers: Box<[usize]>,
    sup_size: usize,
    sub_size: usize,
    layout: Layout,
}

impl KernelPlan {
    /// Compiles the plan for mapping `sup` tables onto `sub` tables.
    /// `sub` must be a subdomain of `sup`.
    pub fn new(sup: &Domain, sub: &Domain) -> Self {
        assert!(
            sub.is_subdomain_of(sup),
            "kernel plan target must be a subdomain of the source"
        );
        assert!(
            sup.num_vars() <= MAX_PLAN_VARS,
            "table scope exceeds {MAX_PLAN_VARS} variables (≥ 2^33 entries)"
        );
        let layout = classify(sup, sub);
        KernelPlan {
            sup_cards: sup.cards().into(),
            sub_cards: sub.cards().into(),
            ext_strides: embedding_strides(sup, sub).into(),
            base_strides: embedding_strides(sub, sup).into(),
            fibers: fiber_offsets(sup, sub).into(),
            sup_size: sup.size(),
            sub_size: sub.size(),
            layout,
        }
    }

    /// Superdomain table size.
    #[inline]
    pub fn sup_size(&self) -> usize {
        self.sup_size
    }

    /// Subdomain table size.
    #[inline]
    pub fn sub_size(&self) -> usize {
        self.sub_size
    }

    /// The layout classification this plan dispatches on.
    #[inline]
    pub fn layout(&self) -> Layout {
        self.layout
    }

    /// Superdomain cardinalities (odometer radices for source walks).
    #[inline]
    pub fn sup_cards(&self) -> &[usize] {
        &self.sup_cards
    }

    /// Subdomain cardinalities (odometer radices for output walks).
    #[inline]
    pub fn sub_cards(&self) -> &[usize] {
        &self.sub_cards
    }

    /// Per-sup-variable strides in the subdomain (the extension mapping).
    #[inline]
    pub fn ext_strides(&self) -> &[usize] {
        &self.ext_strides
    }

    /// Per-sub-variable strides in the superdomain (output-walk bases).
    #[inline]
    pub fn base_strides(&self) -> &[usize] {
        &self.base_strides
    }

    /// Ascending source offsets of the summed-out completions.
    #[inline]
    pub fn fibers(&self) -> &[usize] {
        &self.fibers
    }

    /// Marginalization: `out[m(i)] += src[i]`, `out` overwritten. Each
    /// output slot accumulates its fiber in ascending source order.
    pub fn marginalize(&self, src: &[f64], out: &mut [f64]) {
        debug_assert_eq!(src.len(), self.sup_size);
        debug_assert_eq!(out.len(), self.sub_size);
        match self.layout {
            Layout::Identity => out.copy_from_slice(src),
            Layout::InnerBlock => {
                out.fill(0.0);
                let sub = self.sub_size;
                for block in src.chunks_exact(sub) {
                    // Stride-1 over both operands: autovectorizes. Ascending
                    // blocks = ascending source order per output slot.
                    for (slot, &v) in out.iter_mut().zip(block) {
                        *slot += v;
                    }
                }
            }
            Layout::OuterBlock { fiber_len } => {
                for (slot, fiber) in out.iter_mut().zip(src.chunks_exact(fiber_len)) {
                    let mut acc = 0.0;
                    for &v in fiber {
                        acc += v;
                    }
                    *slot = acc;
                }
            }
            Layout::Generic => {
                out.fill(0.0);
                let mut odo = InlineOdometer::new(&self.sup_cards, &self.ext_strides);
                for &v in src {
                    out[odo.mapped()] += v;
                    odo.advance();
                }
            }
        }
    }

    /// Per-output-slot marginalization over the slot range `[lo, hi)`:
    /// calls `f(t, value)` for each target slot `t`. Bit-identical to
    /// [`KernelPlan::marginalize`] (each slot sums its fiber in ascending
    /// source order); this is the chunkable form the parallel kernels and
    /// the hybrid engine's flattened sep phase consume.
    #[inline]
    pub fn marginalize_fold(
        &self,
        src: &[f64],
        lo: usize,
        hi: usize,
        mut f: impl FnMut(usize, f64),
    ) {
        debug_assert!(hi <= self.sub_size);
        match self.layout {
            Layout::Identity => {
                for (t, &v) in src.iter().enumerate().take(hi).skip(lo) {
                    f(t, v);
                }
            }
            Layout::OuterBlock { fiber_len } => {
                for t in lo..hi {
                    let fiber = &src[t * fiber_len..(t + 1) * fiber_len];
                    let mut acc = 0.0;
                    for &v in fiber {
                        acc += v;
                    }
                    f(t, acc);
                }
            }
            _ => {
                let mut odo = InlineOdometer::new(&self.sub_cards, &self.base_strides);
                odo.seek(lo);
                for t in lo..hi {
                    let base = odo.mapped();
                    let mut acc = 0.0;
                    for &off in self.fibers.iter() {
                        acc += src[base + off];
                    }
                    f(t, acc);
                    odo.advance();
                }
            }
        }
    }

    /// Max-marginalization: `out[m(i)] = max(out[m(i)], src[i])`, `out`
    /// overwritten (initialized to `-inf`).
    pub fn max_marginalize(&self, src: &[f64], out: &mut [f64]) {
        debug_assert_eq!(src.len(), self.sup_size);
        debug_assert_eq!(out.len(), self.sub_size);
        if self.layout == Layout::Identity {
            out.copy_from_slice(src);
            return;
        }
        out.fill(f64::NEG_INFINITY);
        let mut odo = InlineOdometer::new(&self.sup_cards, &self.ext_strides);
        for &v in src {
            let slot = &mut out[odo.mapped()];
            if v > *slot {
                *slot = v;
            }
            odo.advance();
        }
    }

    /// Extension-multiply: `table[i] *= msg[m(i)]`.
    pub fn extend_multiply(&self, table: &mut [f64], msg: &[f64]) {
        debug_assert_eq!(table.len(), self.sup_size);
        debug_assert_eq!(msg.len(), self.sub_size);
        match self.layout {
            Layout::Identity => {
                for (v, &m) in table.iter_mut().zip(msg) {
                    *v *= m;
                }
            }
            Layout::InnerBlock => {
                for block in table.chunks_exact_mut(self.sub_size) {
                    for (v, &m) in block.iter_mut().zip(msg) {
                        *v *= m;
                    }
                }
            }
            Layout::OuterBlock { fiber_len } => {
                for (fiber, &m) in table.chunks_exact_mut(fiber_len).zip(msg) {
                    for v in fiber {
                        *v *= m;
                    }
                }
            }
            Layout::Generic => {
                let mut odo = InlineOdometer::new(&self.sup_cards, &self.ext_strides);
                for v in table {
                    *v *= msg[odo.mapped()];
                    odo.advance();
                }
            }
        }
    }

    /// Extension-divide with the Hugin `0/0 = 0` convention.
    pub fn extend_divide(&self, table: &mut [f64], msg: &[f64]) {
        debug_assert_eq!(table.len(), self.sup_size);
        debug_assert_eq!(msg.len(), self.sub_size);
        let mut odo = InlineOdometer::new(&self.sup_cards, &self.ext_strides);
        for v in table {
            *v = safe_div(*v, msg[odo.mapped()]);
            odo.advance();
        }
    }

    /// Chunked extension-multiply: applies `table[lo + j] *= msg[m(lo + j)]`
    /// to `chunk = &mut table[lo..hi]`. Parallel callers hand each worker a
    /// disjoint chunk; results are bitwise equal to the full-table form
    /// because each entry is written exactly once.
    #[inline]
    pub fn extend_multiply_range(&self, chunk: &mut [f64], msg: &[f64], lo: usize) {
        self.extend_range_apply(chunk, msg, lo, |v, m| *v *= m);
    }

    /// Chunked extension-divide (`0/0 = 0`); see
    /// [`KernelPlan::extend_multiply_range`].
    #[inline]
    pub fn extend_divide_range(&self, chunk: &mut [f64], msg: &[f64], lo: usize) {
        self.extend_range_apply(chunk, msg, lo, |v, m| *v = safe_div(*v, m));
    }

    #[inline]
    fn extend_range_apply(
        &self,
        chunk: &mut [f64],
        msg: &[f64],
        lo: usize,
        mut apply: impl FnMut(&mut f64, f64),
    ) {
        debug_assert!(lo + chunk.len() <= self.sup_size);
        match self.layout {
            Layout::Identity => {
                for (v, &m) in chunk.iter_mut().zip(&msg[lo..]) {
                    apply(v, m);
                }
            }
            Layout::InnerBlock => {
                let sub = self.sub_size;
                let mut m = lo % sub;
                for v in chunk {
                    apply(v, msg[m]);
                    m += 1;
                    if m == sub {
                        m = 0;
                    }
                }
            }
            Layout::OuterBlock { fiber_len } => {
                let mut t = lo / fiber_len;
                let mut left = fiber_len - lo % fiber_len;
                for v in chunk {
                    apply(v, msg[t]);
                    left -= 1;
                    if left == 0 {
                        t += 1;
                        left = fiber_len;
                    }
                }
            }
            Layout::Generic => {
                let mut odo = InlineOdometer::new(&self.sup_cards, &self.ext_strides);
                odo.seek(lo);
                for v in chunk {
                    apply(v, msg[odo.mapped()]);
                    odo.advance();
                }
            }
        }
    }
}

/// The fused collect kernel: in one pass over the clique,
/// `table[i] *= msg[mul(i)]` and `out[marg(i)] += table[i]` — the
/// extension of a pending separator ratio folded into the next outgoing
/// marginalization, so the fully-extended clique is never materialized in
/// a separate sweep.
///
/// `mul` and `marg` must be plans over the **same superdomain** (the
/// clique); `msg` lives on `mul`'s subdomain, `out` (overwritten) on
/// `marg`'s.
///
/// Bit-identity: the products `table[i] · msg[mul(i)]` are exactly the
/// values the unfused `extend_multiply`-then-`marginalize` pair computes,
/// and each output slot still accumulates them in ascending source index
/// — so the fused result is bitwise equal to the two-pass result, for both
/// the updated clique and the outgoing message. That equality is also
/// what licenses the internal dispatch: when either plan has a fast
/// (non-[`Layout::Generic`]) layout, the two vectorizable passes beat one
/// fused double-odometer walk (the `kernels` microbench measures ~7× on
/// blocked layouts), so this function runs them instead; the single
/// fused pass is kept for the generic/generic case, where saving a full
/// clique traversal is what wins.
pub fn multiply_marginalize(
    mul: &KernelPlan,
    marg: &KernelPlan,
    table: &mut [f64],
    msg: &[f64],
    out: &mut [f64],
) {
    debug_assert_eq!(mul.sup_size, marg.sup_size, "plans must share a clique");
    debug_assert_eq!(table.len(), mul.sup_size);
    debug_assert_eq!(msg.len(), mul.sub_size);
    debug_assert_eq!(out.len(), marg.sub_size);
    if mul.layout != Layout::Generic || marg.layout != Layout::Generic {
        mul.extend_multiply(table, msg);
        marg.marginalize(table, out);
        return;
    }
    out.fill(0.0);
    let mut mul_odo = InlineOdometer::new(&mul.sup_cards, &mul.ext_strides);
    let mut marg_odo = InlineOdometer::new(&marg.sup_cards, &marg.ext_strides);
    for v in table {
        *v *= msg[mul_odo.mapped()];
        out[marg_odo.mapped()] += *v;
        mul_odo.advance();
        marg_odo.advance();
    }
}

/// Mixed-radix odometer with **inline** digit storage — the allocation-free
/// twin of [`crate::index_map::Odometer`] used inside plan execution.
/// Capacity is [`MAX_PLAN_VARS`]; plan construction enforces the bound.
struct InlineOdometer<'a> {
    cards: &'a [usize],
    strides: &'a [usize],
    digits: [usize; MAX_PLAN_VARS],
    mapped: usize,
}

impl<'a> InlineOdometer<'a> {
    #[inline]
    fn new(cards: &'a [usize], strides: &'a [usize]) -> Self {
        debug_assert_eq!(cards.len(), strides.len());
        debug_assert!(cards.len() <= MAX_PLAN_VARS);
        InlineOdometer {
            cards,
            strides,
            digits: [0; MAX_PLAN_VARS],
            mapped: 0,
        }
    }

    /// Jumps to flat position `idx` (one mixed-radix decode).
    #[inline]
    fn seek(&mut self, idx: usize) {
        let mut rest = idx;
        self.mapped = 0;
        for i in (0..self.cards.len()).rev() {
            self.digits[i] = rest % self.cards[i];
            rest /= self.cards[i];
            self.mapped += self.digits[i] * self.strides[i];
        }
        debug_assert_eq!(rest, 0, "seek past end of domain");
    }

    #[inline]
    fn mapped(&self) -> usize {
        self.mapped
    }

    #[inline]
    fn advance(&mut self) {
        let mut i = self.cards.len();
        loop {
            if i == 0 {
                return; // wrapped past the last assignment
            }
            i -= 1;
            self.digits[i] += 1;
            self.mapped += self.strides[i];
            if self.digits[i] < self.cards[i] {
                return;
            }
            self.mapped -= self.strides[i] * self.cards[i];
            self.digits[i] = 0;
        }
    }
}

/// Classifies how `sub`'s variables sit inside `sup`'s layout. Both
/// variable lists are strictly ascending, so a subset that forms a
/// contiguous suffix (prefix) of the list is automatically in matching
/// order — position comparison suffices.
fn classify(sup: &Domain, sub: &Domain) -> Layout {
    let (sv, bv) = (sup.vars(), sub.vars());
    if sv == bv {
        return Layout::Identity;
    }
    if sv[sv.len() - bv.len()..] == *bv {
        return Layout::InnerBlock;
    }
    if sv[..bv.len()] == *bv {
        return Layout::OuterBlock {
            fiber_len: sup.size() / sub.size(),
        };
    }
    Layout::Generic
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastbn_bayesnet::VarId;

    fn dom(pairs: &[(u32, usize)]) -> Domain {
        Domain::new(pairs.iter().map(|&(v, c)| (VarId(v), c)).collect())
    }

    fn ramp(n: usize) -> Vec<f64> {
        (0..n).map(|i| (i + 1) as f64).collect()
    }

    #[test]
    fn classification_covers_all_cases() {
        let sup = dom(&[(0, 2), (1, 3), (2, 2), (3, 2)]);
        let same = KernelPlan::new(&sup, &sup);
        assert_eq!(same.layout(), Layout::Identity);
        let inner = KernelPlan::new(&sup, &dom(&[(2, 2), (3, 2)]));
        assert_eq!(inner.layout(), Layout::InnerBlock);
        let outer = KernelPlan::new(&sup, &dom(&[(0, 2), (1, 3)]));
        assert_eq!(outer.layout(), Layout::OuterBlock { fiber_len: 4 });
        let scattered = KernelPlan::new(&sup, &dom(&[(1, 3), (3, 2)]));
        assert_eq!(scattered.layout(), Layout::Generic);
        // Scalar target: the empty suffix rule wins, block size 1.
        let scalar = KernelPlan::new(&sup, &Domain::scalar());
        assert_eq!(scalar.layout(), Layout::InnerBlock);
        assert_eq!(scalar.sub_size(), 1);
    }

    #[test]
    fn fast_paths_match_generic_bitwise() {
        // Force every layout through the generic odometer by comparing
        // against a plan whose classification is overridden.
        let sup = dom(&[(0, 2), (1, 3), (2, 2), (3, 2)]);
        for sub in [
            dom(&[(2, 2), (3, 2)]),
            dom(&[(0, 2), (1, 3)]),
            dom(&[(0, 2), (3, 2)]),
            sup.clone(),
            Domain::scalar(),
        ] {
            let plan = KernelPlan::new(&sup, &sub);
            let mut generic = plan.clone();
            generic.layout = Layout::Generic;

            let src = ramp(sup.size());
            let msg: Vec<f64> = (0..sub.size()).map(|i| 0.25 * (i + 1) as f64).collect();

            let mut fast = vec![f64::NAN; sub.size()];
            let mut slow = vec![f64::NAN; sub.size()];
            plan.marginalize(&src, &mut fast);
            generic.marginalize(&src, &mut slow);
            assert_eq!(fast, slow, "marginalize {:?}", plan.layout());

            let mut folded = vec![f64::NAN; sub.size()];
            plan.marginalize_fold(&src, 0, sub.size(), |t, v| folded[t] = v);
            assert_eq!(folded, slow, "fold {:?}", plan.layout());

            let mut a = src.clone();
            let mut b = src.clone();
            plan.extend_multiply(&mut a, &msg);
            generic.extend_multiply(&mut b, &msg);
            assert_eq!(a, b, "extend {:?}", plan.layout());

            // Range form, split at an awkward boundary.
            let mut c = src.clone();
            let mid = sup.size() / 3;
            let (left, right) = c.split_at_mut(mid);
            plan.extend_multiply_range(left, &msg, 0);
            plan.extend_multiply_range(right, &msg, mid);
            assert_eq!(c, b, "extend range {:?}", plan.layout());
        }
    }

    #[test]
    fn fused_kernel_equals_two_pass() {
        let sup = dom(&[(0, 2), (1, 3), (2, 2)]);
        let mul_sub = dom(&[(1, 3)]);
        let marg_sub = dom(&[(0, 2), (2, 2)]);
        let mul = KernelPlan::new(&sup, &mul_sub);
        let marg = KernelPlan::new(&sup, &marg_sub);
        let msg = [2.0, 0.5, 1.5];

        let mut fused_table = ramp(sup.size());
        let mut fused_out = vec![f64::NAN; marg_sub.size()];
        multiply_marginalize(&mul, &marg, &mut fused_table, &msg, &mut fused_out);

        let mut two_pass = ramp(sup.size());
        mul.extend_multiply(&mut two_pass, &msg);
        let mut out = vec![f64::NAN; marg_sub.size()];
        marg.marginalize(&two_pass, &mut out);

        assert_eq!(fused_table, two_pass);
        assert_eq!(fused_out, out);
    }

    #[test]
    fn max_marginalize_matches_reference() {
        let sup = dom(&[(0, 2), (1, 3), (2, 2)]);
        let sub = dom(&[(1, 3)]);
        let plan = KernelPlan::new(&sup, &sub);
        let src: Vec<f64> = (0..sup.size()).map(|i| ((i * 7) % 11) as f64).collect();
        let mut got = vec![0.0; sub.size()];
        plan.max_marginalize(&src, &mut got);
        let mut want = vec![f64::NEG_INFINITY; sub.size()];
        let mut odo = InlineOdometer::new(plan.sup_cards(), plan.ext_strides());
        for &v in &src {
            if v > want[odo.mapped()] {
                want[odo.mapped()] = v;
            }
            odo.advance();
        }
        assert_eq!(got, want);
    }

    #[test]
    #[should_panic(expected = "subdomain")]
    fn non_subdomain_target_rejected() {
        let sup = dom(&[(0, 2), (1, 2)]);
        let other = dom(&[(5, 2)]);
        KernelPlan::new(&sup, &other);
    }
}
