//! Property-based tests of the potential-table algebra — the invariants
//! the inference engines silently rely on.

use std::sync::Arc;

use fastbn_bayesnet::VarId;
use fastbn_parallel::{Schedule, ThreadPool};
use fastbn_potential::{ops, ops_par, Domain, PotentialTable};
use proptest::prelude::*;
use proptest::strategy::ValueTree;

/// A random domain of 1..=5 variables with cardinalities 1..=4, ids drawn
/// sparsely so sub/superdomain relations exercise gaps.
fn arb_domain() -> impl Strategy<Value = Arc<Domain>> {
    proptest::collection::btree_map(0u32..12, 1usize..5, 1..6).prop_map(|m| {
        Arc::new(Domain::from_sorted(
            m.into_iter().map(|(v, c)| (VarId(v), c)).collect(),
        ))
    })
}

/// A random table over a random domain with non-negative entries.
fn arb_table() -> impl Strategy<Value = PotentialTable> {
    arb_domain().prop_flat_map(|d| {
        let size = d.size();
        proptest::collection::vec(0.0f64..4.0, size)
            .prop_map(move |values| PotentialTable::from_values(d.clone(), values))
    })
}

/// A random subdomain of `d` (possibly empty/scalar).
fn arb_subdomain(d: &Domain) -> impl Strategy<Value = Arc<Domain>> {
    let pairs: Vec<(VarId, usize)> = d
        .vars()
        .iter()
        .zip(d.cards())
        .map(|(&v, &c)| (v, c))
        .collect();
    proptest::collection::vec(proptest::bool::ANY, pairs.len()).prop_map(move |mask| {
        Arc::new(Domain::from_sorted(
            pairs
                .iter()
                .zip(&mask)
                .filter(|(_, &keep)| keep)
                .map(|(&p, _)| p)
                .collect(),
        ))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn marginalization_preserves_total_mass(table in arb_table()) {
        let sub_strategy = arb_subdomain(table.domain());
        let mut runner = proptest::test_runner::TestRunner::deterministic();
        let sub = sub_strategy.new_tree(&mut runner).unwrap().current();
        let out = ops::marginalize(&table, sub);
        prop_assert!((out.sum() - table.sum()).abs() < 1e-9 * (1.0 + table.sum()));
    }

    #[test]
    fn marginalization_is_order_independent(table in arb_table()) {
        // Summing out variables one at a time (any split) equals summing
        // out all at once; here: two-step via a random mid domain.
        let mid_strategy = arb_subdomain(table.domain());
        let mut runner = proptest::test_runner::TestRunner::deterministic();
        let mid = mid_strategy.new_tree(&mut runner).unwrap().current();
        let sub_strategy = arb_subdomain(&mid);
        let sub = sub_strategy.new_tree(&mut runner).unwrap().current();

        let direct = ops::marginalize(&table, sub.clone());
        let two_step = ops::marginalize(&ops::marginalize(&table, mid), sub);
        for (a, b) in direct.values().iter().zip(two_step.values()) {
            prop_assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    fn extension_distributes_over_marginalization(table in arb_table()) {
        // Σ_z (φ(x,z) · ψ(x)) = ψ(x) · Σ_z φ(x,z): multiply-then-sum equals
        // sum-then-multiply when the message domain survives.
        let sub_strategy = arb_subdomain(table.domain());
        let mut runner = proptest::test_runner::TestRunner::deterministic();
        let sub = sub_strategy.new_tree(&mut runner).unwrap().current();
        let msg = PotentialTable::from_values(
            sub.clone(),
            (0..sub.size()).map(|i| 0.5 + (i % 5) as f64).collect(),
        );

        let mut mul_first = table.clone();
        ops::extend_multiply(&mut mul_first, &msg);
        let lhs = ops::marginalize(&mul_first, sub.clone());

        let mut rhs = ops::marginalize(&table, sub);
        ops::multiply_into(&mut rhs, &msg);

        for (a, b) in lhs.values().iter().zip(rhs.values()) {
            prop_assert!((a - b).abs() < 1e-9 * (1.0 + a.abs()), "{a} vs {b}");
        }
    }

    #[test]
    fn reduction_then_sum_equals_slice_mass(table in arb_table()) {
        // After reduce(var = s), total mass equals the var = s slice of the
        // single-variable marginal.
        let domain = table.domain();
        let pos = domain.num_vars() / 2;
        let var = domain.vars()[pos];
        let card = domain.cards()[pos];
        let marginal = ops::marginal_of_var(&table, var);
        for (state, &mass) in marginal.iter().enumerate().take(card) {
            let mut reduced = table.clone();
            ops::reduce_evidence(&mut reduced, var, state);
            prop_assert!((reduced.sum() - mass).abs() < 1e-9,
                "state {state}: {} vs {}", reduced.sum(), mass);
        }
    }

    #[test]
    fn parallel_ops_bit_match_sequential(table in arb_table()) {
        let pool = ThreadPool::new(3);
        let sched = Schedule::Dynamic { grain: 3 };
        let sub_strategy = arb_subdomain(table.domain());
        let mut runner = proptest::test_runner::TestRunner::deterministic();
        let sub = sub_strategy.new_tree(&mut runner).unwrap().current();

        let mut seq_out = PotentialTable::zeros(sub.clone());
        ops::marginalize_into(&table, &mut seq_out);
        let mut par_out = PotentialTable::zeros(sub.clone());
        ops_par::marginalize_into_par(&pool, sched, &table, &mut par_out);
        prop_assert_eq!(seq_out.values(), par_out.values());

        let msg = PotentialTable::from_values(
            sub.clone(),
            (0..sub.size()).map(|i| 0.25 + (i % 3) as f64).collect(),
        );
        let mut seq_t = table.clone();
        ops::extend_multiply(&mut seq_t, &msg);
        let mut par_t = table.clone();
        ops_par::extend_multiply_par(&pool, sched, &mut par_t, &msg);
        prop_assert_eq!(seq_t.values(), par_t.values());
    }

    #[test]
    fn normalize_makes_a_distribution(mut table in arb_table()) {
        prop_assume!(table.sum() > 0.0);
        let before = table.sum();
        let z = table.normalize().unwrap();
        prop_assert!((z - before).abs() < 1e-12);
        prop_assert!((table.sum() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn from_cpt_tables_are_conditional_distributions(
        child_card in 2usize..4,
        parent_card in 2usize..4,
        seed in 0u64..50,
    ) {
        // Build a random CPT and check its potential-table form sums to 1
        // over the child for every parent state.
        let mut values = Vec::new();
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).max(1);
        for _ in 0..parent_card {
            let mut row: Vec<f64> = (0..child_card)
                .map(|_| {
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    1.0 + (state % 100) as f64
                })
                .collect();
            let sum: f64 = row.iter().sum();
            for v in &mut row {
                *v /= sum;
            }
            let drift = 1.0 - row.iter().sum::<f64>();
            row[0] += drift;
            values.extend(row);
        }
        let cpt = fastbn_bayesnet::Cpt::new(
            VarId(0),
            vec![VarId(1)],
            child_card,
            vec![parent_card],
            values,
        )
        .unwrap();
        let cards = vec![child_card, parent_card];
        let table = PotentialTable::from_cpt(&cpt, &cards);
        for p in 0..parent_card {
            let total: f64 = (0..child_card)
                .map(|c| table.value_at(&[c, p]))
                .sum();
            prop_assert!((total - 1.0).abs() < 1e-9);
        }
    }
}
