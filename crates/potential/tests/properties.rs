//! Property-style tests of the potential-table algebra — the invariants
//! the inference engines silently rely on — run over a seeded family of
//! random domains and tables (the build environment has no proptest).

use std::sync::Arc;

use fastbn_bayesnet::VarId;
use fastbn_parallel::{Schedule, ThreadPool};
use fastbn_potential::{ops, ops_par, Domain, PotentialTable};

/// Minimal deterministic generator (xorshift64*) for test data.
struct TestRng(u64);

impl TestRng {
    fn new(seed: u64) -> Self {
        TestRng(seed.wrapping_mul(0x9E3779B97F4A7C15).max(1))
    }

    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }

    fn f64(&mut self) -> f64 {
        (self.next() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    fn bool(&mut self) -> bool {
        self.next() >> 63 == 1
    }
}

/// A random domain of 1..=5 variables with cardinalities 1..=4, ids drawn
/// sparsely from 0..12 so sub/superdomain relations exercise gaps.
fn random_domain(rng: &mut TestRng) -> Arc<Domain> {
    let num_vars = 1 + rng.below(5);
    let mut ids: Vec<u32> = (0..12).collect();
    // Partial shuffle, take the first `num_vars`, sort.
    for i in 0..num_vars {
        let j = i + rng.below(12 - i);
        ids.swap(i, j);
    }
    let mut chosen: Vec<u32> = ids[..num_vars].to_vec();
    chosen.sort_unstable();
    Arc::new(Domain::from_sorted(
        chosen
            .into_iter()
            .map(|v| (VarId(v), 1 + rng.below(4)))
            .collect(),
    ))
}

/// A random table over a random domain with non-negative entries.
fn random_table(rng: &mut TestRng) -> PotentialTable {
    let domain = random_domain(rng);
    let values: Vec<f64> = (0..domain.size()).map(|_| rng.f64() * 4.0).collect();
    PotentialTable::from_values(domain, values)
}

/// A random subdomain of `d` (possibly empty/scalar).
fn random_subdomain(rng: &mut TestRng, d: &Domain) -> Arc<Domain> {
    Arc::new(Domain::from_sorted(
        d.vars()
            .iter()
            .zip(d.cards())
            .filter(|_| rng.bool())
            .map(|(&v, &c)| (v, c))
            .collect(),
    ))
}

const CASES: u64 = 64;

#[test]
fn marginalization_preserves_total_mass() {
    for case in 0..CASES {
        let mut rng = TestRng::new(case + 1);
        let table = random_table(&mut rng);
        let sub = random_subdomain(&mut rng, table.domain());
        let out = ops::marginalize(&table, sub);
        assert!(
            (out.sum() - table.sum()).abs() < 1e-9 * (1.0 + table.sum()),
            "case {case}"
        );
    }
}

#[test]
fn marginalization_is_order_independent() {
    // Summing out variables one at a time (any split) equals summing
    // out all at once; here: two-step via a random mid domain.
    for case in 0..CASES {
        let mut rng = TestRng::new(case + 100);
        let table = random_table(&mut rng);
        let mid = random_subdomain(&mut rng, table.domain());
        let sub = random_subdomain(&mut rng, &mid);

        let direct = ops::marginalize(&table, sub.clone());
        let two_step = ops::marginalize(&ops::marginalize(&table, mid), sub);
        for (a, b) in direct.values().iter().zip(two_step.values()) {
            assert!((a - b).abs() < 1e-9, "case {case}: {a} vs {b}");
        }
    }
}

#[test]
fn extension_distributes_over_marginalization() {
    // Σ_z (φ(x,z) · ψ(x)) = ψ(x) · Σ_z φ(x,z): multiply-then-sum equals
    // sum-then-multiply when the message domain survives.
    for case in 0..CASES {
        let mut rng = TestRng::new(case + 200);
        let table = random_table(&mut rng);
        let sub = random_subdomain(&mut rng, table.domain());
        let msg = PotentialTable::from_values(
            sub.clone(),
            (0..sub.size()).map(|i| 0.5 + (i % 5) as f64).collect(),
        );

        let mut mul_first = table.clone();
        ops::extend_multiply(&mut mul_first, &msg);
        let lhs = ops::marginalize(&mul_first, sub.clone());

        let mut rhs = ops::marginalize(&table, sub);
        ops::multiply_into(&mut rhs, &msg);

        for (a, b) in lhs.values().iter().zip(rhs.values()) {
            assert!(
                (a - b).abs() < 1e-9 * (1.0 + a.abs()),
                "case {case}: {a} vs {b}"
            );
        }
    }
}

#[test]
fn reduction_then_sum_equals_slice_mass() {
    // After reduce(var = s), total mass equals the var = s slice of the
    // single-variable marginal.
    for case in 0..CASES {
        let mut rng = TestRng::new(case + 300);
        let table = random_table(&mut rng);
        let domain = table.domain();
        let pos = domain.num_vars() / 2;
        let var = domain.vars()[pos];
        let card = domain.cards()[pos];
        let marginal = ops::marginal_of_var(&table, var);
        for (state, &mass) in marginal.iter().enumerate().take(card) {
            let mut reduced = table.clone();
            ops::reduce_evidence(&mut reduced, var, state);
            assert!(
                (reduced.sum() - mass).abs() < 1e-9,
                "case {case} state {state}: {} vs {}",
                reduced.sum(),
                mass
            );
        }
    }
}

#[test]
fn parallel_ops_bit_match_sequential() {
    let pool = ThreadPool::new(3);
    let sched = Schedule::Dynamic { grain: 3 };
    for case in 0..CASES {
        let mut rng = TestRng::new(case + 400);
        let table = random_table(&mut rng);
        let sub = random_subdomain(&mut rng, table.domain());

        let mut seq_out = PotentialTable::zeros(sub.clone());
        ops::marginalize_into(&table, &mut seq_out);
        let mut par_out = PotentialTable::zeros(sub.clone());
        ops_par::marginalize_into_par(&pool, sched, &table, &mut par_out);
        assert_eq!(seq_out.values(), par_out.values(), "case {case}");

        let msg = PotentialTable::from_values(
            sub.clone(),
            (0..sub.size()).map(|i| 0.25 + (i % 3) as f64).collect(),
        );
        let mut seq_t = table.clone();
        ops::extend_multiply(&mut seq_t, &msg);
        let mut par_t = table.clone();
        ops_par::extend_multiply_par(&pool, sched, &mut par_t, &msg);
        assert_eq!(seq_t.values(), par_t.values(), "case {case}");
    }
}

#[test]
fn normalize_makes_a_distribution() {
    for case in 0..CASES {
        let mut rng = TestRng::new(case + 500);
        let mut table = random_table(&mut rng);
        if table.sum() <= 0.0 {
            continue; // the all-zero corner is covered by normalize()'s Err path
        }
        let before = table.sum();
        let z = table.normalize().unwrap();
        assert!((z - before).abs() < 1e-12, "case {case}");
        assert!((table.sum() - 1.0).abs() < 1e-9, "case {case}");
    }
}

#[test]
fn from_cpt_tables_are_conditional_distributions() {
    for case in 0u64..50 {
        // Build a random CPT and check its potential-table form sums to 1
        // over the child for every parent state.
        let mut rng = TestRng::new(case + 600);
        let child_card = 2 + rng.below(2);
        let parent_card = 2 + rng.below(2);
        let mut values = Vec::new();
        for _ in 0..parent_card {
            let mut row: Vec<f64> = (0..child_card)
                .map(|_| 1.0 + (rng.next() % 100) as f64)
                .collect();
            let sum: f64 = row.iter().sum();
            for v in &mut row {
                *v /= sum;
            }
            let drift = 1.0 - row.iter().sum::<f64>();
            row[0] += drift;
            values.extend(row);
        }
        let cpt = fastbn_bayesnet::Cpt::new(
            VarId(0),
            vec![VarId(1)],
            child_card,
            vec![parent_card],
            values,
        )
        .unwrap();
        let cards = vec![child_card, parent_card];
        let table = PotentialTable::from_cpt(&cpt, &cards);
        for p in 0..parent_card {
            let total: f64 = (0..child_card).map(|c| table.value_at(&[c, p])).sum();
            assert!((total - 1.0).abs() < 1e-9, "case {case}");
        }
    }
}
