//! Seeded property sweep for [`KernelPlan`]: every plan kernel, on
//! random (superdomain, subdomain) pairs covering the whole layout
//! taxonomy, must be **bitwise** equal to a per-entry decode-and-project
//! reference — the contract the engines' bit-identity suites stand on.
//! (The build environment has no proptest; this is the seeded-sweep
//! equivalent.)

use fastbn_bayesnet::VarId;
use fastbn_potential::{multiply_marginalize, Domain, KernelPlan, Layout};

/// Minimal deterministic generator (xorshift64*) for test data.
struct TestRng(u64);

impl TestRng {
    fn new(seed: u64) -> Self {
        TestRng(seed.wrapping_mul(0x9E3779B97F4A7C15).max(1))
    }

    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }

    fn f64(&mut self) -> f64 {
        (self.next() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A random superdomain of 2..=6 variables, cards 2..=5, ids drawn
/// sparsely from 0..14 so scopes have gaps like real clique scopes.
fn random_sup(rng: &mut TestRng) -> Domain {
    let num_vars = 2 + rng.below(5);
    let mut ids: Vec<u32> = (0..14).collect();
    for i in 0..num_vars {
        let j = i + rng.below(14 - i);
        ids.swap(i, j);
    }
    let mut chosen: Vec<u32> = ids[..num_vars].to_vec();
    chosen.sort_unstable();
    Domain::new(
        chosen
            .into_iter()
            .map(|v| (VarId(v), 2 + rng.below(4)))
            .collect(),
    )
}

/// A subdomain of `sup` chosen to exercise every layout class: scope
/// suffixes (`InnerBlock`), prefixes (`OuterBlock`), the full scope
/// (`Identity`), scattered subsets and the empty/scalar scope.
fn random_sub(rng: &mut TestRng, sup: &Domain) -> Domain {
    let n = sup.num_vars();
    let pick: Vec<usize> = match rng.below(5) {
        0 => (0..n).collect(),                        // Identity
        1 => (n - 1 - rng.below(n - 1)..n).collect(), // proper suffix
        2 => (0..1 + rng.below(n - 1)).collect(),     // proper prefix
        3 => Vec::new(),                              // scalar target
        _ => {
            // Scattered subset (may happen to be a prefix/suffix — the
            // classification, not the choice, decides the layout).
            let mut v: Vec<usize> = (0..n).filter(|_| rng.below(2) == 0).collect();
            if v.is_empty() {
                v.push(rng.below(n));
            }
            v
        }
    };
    Domain::new(
        pick.iter()
            .map(|&p| (sup.vars()[p], sup.cards()[p]))
            .collect(),
    )
}

fn random_values(rng: &mut TestRng, n: usize) -> Vec<f64> {
    // Mix of magnitudes and exact zeros (zeros exercise safe division
    // paths downstream and make reassociation visible).
    (0..n)
        .map(|_| match rng.below(8) {
            0 => 0.0,
            1 => rng.f64() * 1e6,
            _ => rng.f64(),
        })
        .collect()
}

/// Per-entry reference mapping: flat `sup` index → flat `sub` index, via
/// full decode and project (what the plans' `ext_strides` precompute).
fn mapped_index(sup: &Domain, sub: &Domain, idx: usize) -> usize {
    let mut states = vec![0usize; sup.num_vars()];
    sup.decode(idx, &mut states);
    sub.vars()
        .iter()
        .enumerate()
        .map(|(pos, &v)| states[sup.position_of(v).unwrap()] * sub.strides()[pos])
        .sum()
}

#[test]
fn plan_kernels_match_decode_reference_bitwise() {
    let mut seen = [false; 4]; // Identity, InnerBlock, OuterBlock, Generic
    for seed in 0..200u64 {
        let mut rng = TestRng::new(seed + 1);
        let sup = random_sup(&mut rng);
        let sub = random_sub(&mut rng, &sup);
        let plan = KernelPlan::new(&sup, &sub);
        seen[match plan.layout() {
            Layout::Identity => 0,
            Layout::InnerBlock => 1,
            Layout::OuterBlock { .. } => 2,
            Layout::Generic => 3,
        }] = true;

        let map: Vec<usize> = (0..sup.size())
            .map(|i| mapped_index(&sup, &sub, i))
            .collect();
        let table = random_values(&mut rng, sup.size());
        let msg = random_values(&mut rng, sub.size());

        // marginalize: ascending-source accumulation per output slot.
        let mut got = vec![0.0; sub.size()];
        plan.marginalize(&table, &mut got);
        let mut want = vec![0.0; sub.size()];
        for (i, &v) in table.iter().enumerate() {
            want[map[i]] += v;
        }
        assert_bits(&got, &want, "marginalize", seed);

        // marginalize_fold over a random sub-range must agree with the
        // full kernel on that range (the parallel chunking contract).
        let lo = rng.below(sub.size());
        let hi = lo + 1 + rng.below(sub.size() - lo);
        let mut folded = vec![f64::NAN; hi - lo];
        plan.marginalize_fold(&table, lo, hi, |t, acc| folded[t - lo] = acc);
        assert_bits(&folded, &want[lo..hi], "marginalize_fold", seed);

        // max_marginalize: same mapping, max instead of sum.
        let mut got = vec![0.0; sub.size()];
        plan.max_marginalize(&table, &mut got);
        let mut want = vec![f64::NEG_INFINITY; sub.size()];
        for (i, &v) in table.iter().enumerate() {
            if v > want[map[i]] {
                want[map[i]] = v;
            }
        }
        assert_bits(&got, &want, "max_marginalize", seed);

        // extend_multiply / extend_divide (full and chunked range forms).
        let mut got = table.clone();
        plan.extend_multiply(&mut got, &msg);
        let want: Vec<f64> = table
            .iter()
            .enumerate()
            .map(|(i, &v)| v * msg[map[i]])
            .collect();
        assert_bits(&got, &want, "extend_multiply", seed);

        // extend_divide holds the Hugin invariant (0 only ever divides
        // 0), so zero the table wherever the mapped divisor is zero —
        // this is exactly the state propagation produces, and it drives
        // the 0/0 → 0 branch.
        let table_div: Vec<f64> = table
            .iter()
            .enumerate()
            .map(|(i, &v)| if msg[map[i]] == 0.0 { 0.0 } else { v })
            .collect();
        let mut got = table_div.clone();
        plan.extend_divide(&mut got, &msg);
        let want_div: Vec<f64> = table_div
            .iter()
            .enumerate()
            .map(|(i, &v)| {
                if msg[map[i]] == 0.0 {
                    0.0
                } else {
                    v / msg[map[i]]
                }
            })
            .collect();
        assert_bits(&got, &want_div, "extend_divide", seed);

        let lo = rng.below(sup.size());
        let hi = lo + 1 + rng.below(sup.size() - lo);
        let mut chunk = table[lo..hi].to_vec();
        plan.extend_multiply_range(&mut chunk, &msg, lo);
        assert_bits(&chunk, &want[lo..hi], "extend_multiply_range", seed);
        let mut chunk = table_div[lo..hi].to_vec();
        plan.extend_divide_range(&mut chunk, &msg, lo);
        assert_bits(&chunk, &want_div[lo..hi], "extend_divide_range", seed);
    }
    assert_eq!(
        seen, [true; 4],
        "sweep must cover Identity/InnerBlock/OuterBlock/Generic"
    );
}

#[test]
fn fused_multiply_marginalize_is_bitwise_two_pass() {
    // The Seq engine's deferred-ratio fusion rests on this: fusing a
    // pending ratio into the next outgoing marginalization must produce
    // the exact bits of extend-multiply-then-marginalize, for both the
    // updated clique and the outgoing message — including when the two
    // plans target different subdomains and across every layout pairing.
    for seed in 200..340u64 {
        let mut rng = TestRng::new(seed);
        let sup = random_sup(&mut rng);
        let mul_sub = random_sub(&mut rng, &sup);
        let marg_sub = random_sub(&mut rng, &sup);
        let mul = KernelPlan::new(&sup, &mul_sub);
        let marg = KernelPlan::new(&sup, &marg_sub);

        let table = random_values(&mut rng, sup.size());
        let msg = random_values(&mut rng, mul_sub.size());

        let mut fused_table = table.clone();
        let mut fused_out = vec![f64::NAN; marg_sub.size()];
        multiply_marginalize(&mul, &marg, &mut fused_table, &msg, &mut fused_out);

        let mut two_pass_table = table.clone();
        mul.extend_multiply(&mut two_pass_table, &msg);
        let mut two_pass_out = vec![0.0; marg_sub.size()];
        marg.marginalize(&two_pass_table, &mut two_pass_out);

        assert_bits(&fused_table, &two_pass_table, "fused clique", seed);
        assert_bits(&fused_out, &two_pass_out, "fused message", seed);
    }
}

fn assert_bits(got: &[f64], want: &[f64], what: &str, seed: u64) {
    assert_eq!(got.len(), want.len(), "{what} length (seed {seed})");
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        assert_eq!(
            g.to_bits(),
            w.to_bits(),
            "{what} slot {i} (seed {seed}): {g} vs {w}"
        );
    }
}
