//! A minimal oneshot channel with cancellation, for per-request result
//! delivery.
//!
//! Each submitted request gets one `(SlotSender, SlotReceiver)` pair:
//! the worker sends exactly one result, the client waits for it. Either
//! side may disappear early — a client dropping its receiver *cancels*
//! the request (the worker observes [`SlotSender::is_cancelled`] and
//! skips or discards the work), and a worker dropping its sender without
//! replying (server torn down mid-flight) surfaces to the waiting client
//! as [`WaitError::Abandoned`] rather than a hang.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// What the waiting client observes instead of a value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum WaitError {
    /// The sender was dropped without ever sending — the serving side
    /// went away mid-flight.
    Abandoned,
}

enum Slot<T> {
    /// No value yet; sender still alive.
    Pending,
    /// Value delivered, waiting to be taken.
    Ready(T),
    /// Sender dropped without delivering.
    Abandoned,
}

struct Inner<T> {
    slot: Mutex<Slot<T>>,
    ready: Condvar,
    /// Set when the receiver is dropped; lets the sender side poll
    /// cancellation without taking the lock.
    cancelled: AtomicBool,
}

impl<T> Inner<T> {
    fn lock(&self) -> std::sync::MutexGuard<'_, Slot<T>> {
        self.slot.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// The producing half; delivers at most one value.
pub(crate) struct SlotSender<T> {
    inner: Arc<Inner<T>>,
    /// Cleared by `send` so `Drop` knows a value was delivered.
    live: bool,
}

/// The consuming half; waits for the value.
pub(crate) struct SlotReceiver<T> {
    inner: Arc<Inner<T>>,
}

/// Creates a fresh oneshot pair.
pub(crate) fn slot<T>() -> (SlotSender<T>, SlotReceiver<T>) {
    let inner = Arc::new(Inner {
        slot: Mutex::new(Slot::Pending),
        ready: Condvar::new(),
        cancelled: AtomicBool::new(false),
    });
    (
        SlotSender {
            inner: inner.clone(),
            live: true,
        },
        SlotReceiver { inner },
    )
}

impl<T> SlotSender<T> {
    /// Delivers the value; hands it back if the receiver is already gone
    /// (the request was cancelled). The cancellation check happens under
    /// the slot lock — the receiver's `Drop` takes the same lock — so a
    /// send and a concurrent drop serialize: either the drop wins and the
    /// value is handed back (counted cancelled), or the send wins and the
    /// value was delivered while the handle was still live.
    pub(crate) fn send(mut self, value: T) -> Result<(), T> {
        let mut slot = self.inner.lock();
        // ORDERING: Acquire pairs with the Release store in the
        // receiver's `Drop` (the lock covers send-vs-drop; the ordering
        // covers the lock-free `is_cancelled` fast path).
        if self.inner.cancelled.load(Ordering::Acquire) {
            return Err(value);
        }
        *slot = Slot::Ready(value);
        drop(slot);
        self.live = false;
        self.inner.ready.notify_one();
        Ok(())
    }

    /// True once the receiver has been dropped — the client abandoned
    /// the request, so computing its result is wasted work.
    pub(crate) fn is_cancelled(&self) -> bool {
        // ORDERING: Acquire pairs with the Release store in the
        // receiver's `Drop`.
        self.inner.cancelled.load(Ordering::Acquire)
    }
}

impl<T> Drop for SlotSender<T> {
    fn drop(&mut self) {
        if self.live {
            *self.inner.lock() = Slot::Abandoned;
            self.inner.ready.notify_one();
        }
    }
}

impl<T> SlotReceiver<T> {
    /// Blocks until the value arrives (or the sender is dropped).
    pub(crate) fn wait(self) -> Result<T, WaitError> {
        let mut slot = self.inner.lock();
        loop {
            match std::mem::replace(&mut *slot, Slot::Pending) {
                Slot::Ready(v) => return Ok(v),
                Slot::Abandoned => return Err(WaitError::Abandoned),
                Slot::Pending => {
                    slot = self
                        .inner
                        .ready
                        .wait(slot)
                        .unwrap_or_else(PoisonError::into_inner);
                }
            }
        }
    }

    /// Blocks until the value arrives, the sender is dropped, or
    /// `timeout` elapses; on timeout the receiver is handed back so the
    /// caller can keep waiting (or drop it to cancel).
    pub(crate) fn wait_timeout(self, timeout: Duration) -> Result<Result<T, WaitError>, Self> {
        let deadline = saturating_deadline(timeout);
        let mut slot = self.inner.lock();
        loop {
            match std::mem::replace(&mut *slot, Slot::Pending) {
                Slot::Ready(v) => return Ok(Ok(v)),
                Slot::Abandoned => return Ok(Err(WaitError::Abandoned)),
                Slot::Pending => {
                    let Some(remaining) = deadline
                        .checked_duration_since(Instant::now())
                        .filter(|d| !d.is_zero())
                    else {
                        drop(slot);
                        return Err(self);
                    };
                    let (guard, _timed_out) = self
                        .inner
                        .ready
                        .wait_timeout(slot, remaining)
                        .unwrap_or_else(PoisonError::into_inner);
                    slot = guard;
                }
            }
        }
    }
}

impl<T> Drop for SlotReceiver<T> {
    fn drop(&mut self) {
        // Under the slot lock, so it serializes with `SlotSender::send`
        // (see there); `is_cancelled` stays a lock-free advisory read.
        let _slot = self.inner.lock();
        // ORDERING: Release pairs with the Acquire loads in `send` and
        // `is_cancelled`.
        self.inner.cancelled.store(true, Ordering::Release);
    }
}

/// `Instant::now() + timeout` without the panic on absurd durations
/// (`Duration::MAX` legitimately means "wait forever"): saturates to a
/// deadline ~30 years out, far beyond any process lifetime.
pub(crate) fn saturating_deadline(timeout: Duration) -> Instant {
    let now = Instant::now();
    now.checked_add(timeout)
        .or_else(|| now.checked_add(Duration::from_secs(60 * 60 * 24 * 365 * 30)))
        .unwrap_or(now)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivers_one_value() {
        let (tx, rx) = slot();
        tx.send(42u32).unwrap();
        assert_eq!(rx.wait(), Ok(42));
    }

    #[test]
    fn cross_thread_delivery() {
        let (tx, rx) = slot();
        let h = std::thread::spawn(move || rx.wait());
        std::thread::sleep(Duration::from_millis(5));
        tx.send("done").unwrap();
        assert_eq!(h.join().unwrap(), Ok("done"));
    }

    #[test]
    fn dropped_receiver_cancels() {
        let (tx, rx) = slot::<u8>();
        assert!(!tx.is_cancelled());
        drop(rx);
        assert!(tx.is_cancelled());
        assert_eq!(tx.send(1), Err(1), "value handed back on cancellation");
    }

    #[test]
    fn dropped_sender_abandons() {
        let (tx, rx) = slot::<u8>();
        drop(tx);
        assert_eq!(rx.wait(), Err(WaitError::Abandoned));
    }

    #[test]
    fn wait_timeout_returns_receiver_then_value() {
        let (tx, rx) = slot();
        let Err(rx) = rx.wait_timeout(Duration::from_millis(10)) else {
            panic!("nothing sent yet, wait must time out");
        };
        tx.send(7u8).unwrap();
        match rx.wait_timeout(Duration::from_secs(5)) {
            Ok(outcome) => assert_eq!(outcome, Ok(7)),
            Err(_) => panic!("value was sent, wait must not time out"),
        }
    }

    #[test]
    fn wait_timeout_observes_abandonment() {
        let (tx, rx) = slot::<u8>();
        let h = std::thread::spawn(move || match rx.wait_timeout(Duration::from_secs(5)) {
            Ok(outcome) => outcome,
            Err(_) => panic!("abandonment must surface before the timeout"),
        });
        std::thread::sleep(Duration::from_millis(5));
        drop(tx);
        assert_eq!(h.join().unwrap(), Err(WaitError::Abandoned));
    }
}
