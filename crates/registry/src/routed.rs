//! The [`RoutedServer`]: model-aware micro-batching over a
//! [`Registry`] — the generalization of `fastbn-serve`'s single-model
//! queue/window/cancellation machinery to many models on one worker
//! pool.
//!
//! # How a routed request flows
//!
//! 1. [`RoutedServer::submit`] (blocking backpressure) or
//!    [`RoutedServer::try_submit`] (fail-fast) resolves the **model
//!    id** against the registry — an unknown id is a typed
//!    [`SubmitErrorKind::UnknownModel`] with the query handed back —
//!    then places the query, the resolved `Arc<Solver>`, and a oneshot
//!    reply slot on the bounded queue, returning a [`Pending`] handle.
//!    Resolving at submit time is what makes hot unload safe: the
//!    request co-owns its model from acceptance to delivery.
//! 2. A worker pops the first waiting request, then keeps collecting
//!    until it has [`max_batch`](RoutedServerBuilder::max_batch)
//!    requests or [`max_delay`](RoutedServerBuilder::max_delay) has
//!    elapsed since the first pop — the micro-batching window.
//! 3. The window is **grouped by model** — by (id, solver instance),
//!    so a hot-reloaded model never shares a batch with its
//!    predecessor and per-model counters stay exact even when one
//!    solver is registered under several ids —
//!    and each group runs as one `QueryBatch` through
//!    [`Solver::query_batch`] — wide groups spread across the shared
//!    pool exactly like `Session::run_batch`. In-window dedup
//!    collapses requests with equal canonical `QueryKey`s *within a
//!    group*; models never share computations.
//! 4. Each result is delivered through its request's oneshot. Dropping
//!    a [`Pending`] cancels; shutdown drains accepted requests and
//!    joins the workers.
//!
//! Global traffic counters keep the single-model
//! [`ServerStats`] contract; [`RoutedServer::model_stats`] adds the
//! per-model breakdown.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, PoisonError, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam_channel::{RecvTimeoutError, TrySendError};
use fastbn_inference::trace::TraceContext;
use fastbn_inference::{InferenceError, Query, QueryBatch, QueryKey, QueryResult, Solver};
use fastbn_telemetry::trace::{
    SlowEntry, SpanRecord, Tracer, SPAN_COMPUTE, SPAN_DELIVERY, SPAN_QUEUE_WAIT, SPAN_REQUEST,
    SPAN_WINDOW,
};
use fastbn_telemetry::{Histogram, MetricsRegistry, MetricsSnapshot};

use crate::oneshot::{saturating_deadline, slot, SlotReceiver, SlotSender, WaitError};
use crate::registry::Registry;
use crate::stats::{Counters, ModelCounters, ModelStats, ServerStats};

/// One queued request: the query, the model it was routed to (id,
/// resolved solver, per-model counters), the oneshot that delivers
/// its result, and its acceptance timestamp (`None` when timing is
/// disabled — see [`RoutedServerBuilder::telemetry`]).
struct Request {
    solver: Arc<Solver>,
    model: Arc<ModelTrack>,
    query: Query,
    reply: SlotSender<Result<QueryResult, InferenceError>>,
    submitted_at: Option<Instant>,
    /// Tracing identity, present iff the server has a
    /// [`Tracer`] installed ([`RoutedServerBuilder::tracer`]).
    trace: Option<ReqTrace>,
}

/// Per-request tracing identity, minted at admission. The slow-query
/// log consumes it for **every** request (it is always on once a
/// tracer is installed); the span tree is only recorded when
/// `sampled`. All times are on the tracer's own clock, so tracing
/// works even with stage timing off
/// ([`RoutedServerBuilder::telemetry`]`(false)`).
#[derive(Clone, Copy)]
struct ReqTrace {
    /// The request's trace id.
    trace: u64,
    /// The pre-minted root (request) span id stage spans parent to.
    root: u64,
    /// Whether this request records a span tree (head sampling).
    sampled: bool,
    /// Admission time.
    t0_ns: u64,
    /// Queue wait, filled in when a worker pops the request.
    queue_ns: u64,
}

/// A model id's counter block, shared by every request routed to it.
struct ModelTrack {
    id: String,
    counters: ModelCounters,
}

/// The per-stage latency histograms of the serving pipeline. Stage
/// names follow a request's life:
///
/// ```text
/// submit ──admission──▶ queued ──queue_wait──▶ popped ─┐
///   window (first pop → dispatch) ◀──────────────────────┘
///   compute (one QueryBatch per model group)
///   delivery (oneshot sends)          total = submit → delivered
/// ```
///
/// All values are nanoseconds except `serve.batch.size` (requests per
/// dispatched group). Recording is a no-op when the registry was built
/// `counters_only`, and the `Instant::now()` reads feeding these are
/// skipped entirely ([`ServerTelemetry::timing`]).
struct StageMetrics {
    admission_ns: Arc<Histogram>,
    queue_wait_ns: Arc<Histogram>,
    window_ns: Arc<Histogram>,
    compute_ns: Arc<Histogram>,
    delivery_ns: Arc<Histogram>,
    total_ns: Arc<Histogram>,
    batch_size: Arc<Histogram>,
}

impl StageMetrics {
    fn in_registry(metrics: &MetricsRegistry) -> StageMetrics {
        StageMetrics {
            admission_ns: metrics.histogram("serve.stage.admission_ns"),
            queue_wait_ns: metrics.histogram("serve.stage.queue_wait_ns"),
            window_ns: metrics.histogram("serve.stage.window_ns"),
            compute_ns: metrics.histogram("serve.stage.compute_ns"),
            delivery_ns: metrics.histogram("serve.stage.delivery_ns"),
            total_ns: metrics.histogram("serve.request.total_ns"),
            batch_size: metrics.histogram("serve.batch.size"),
        }
    }
}

/// Everything the submitters and workers share for observability: the
/// traffic counters (the cells behind both [`ServerStats`] and the
/// exported `serve.*` metrics), the stage histograms, and the registry
/// they live in. `timing` caches
/// [`MetricsRegistry::is_timing_enabled`] so the hot path can skip
/// clock reads without a lock.
struct ServerTelemetry {
    counters: Counters,
    stages: StageMetrics,
    metrics: Arc<MetricsRegistry>,
    timing: bool,
    /// The request tracer, when one was installed
    /// ([`RoutedServerBuilder::tracer`]). `None` keeps the hot path
    /// exactly as it was before tracing existed.
    tracer: Option<Arc<Tracer>>,
}

impl ServerTelemetry {
    fn over(metrics: Arc<MetricsRegistry>, tracer: Option<Arc<Tracer>>) -> ServerTelemetry {
        ServerTelemetry {
            counters: Counters::in_registry(&metrics),
            stages: StageMetrics::in_registry(&metrics),
            timing: metrics.is_timing_enabled(),
            metrics,
            tracer,
        }
    }

    /// The current time, read only when stage timing is on.
    fn now(&self) -> Option<Instant> {
        self.timing.then(Instant::now)
    }

    /// Mints a request's tracing identity at admission: trace and root
    /// span ids unconditionally (the slow-query log never samples),
    /// head sampling only while stage timing is on — `telemetry(false)`
    /// forces the span-tree rate to zero without touching slow-query
    /// exactness.
    fn begin_request(&self) -> Option<ReqTrace> {
        let tracer = self.tracer.as_deref()?;
        let token = tracer.begin_trace();
        Some(ReqTrace {
            trace: token.trace,
            root: tracer.next_span(),
            sampled: token.sampled && self.timing,
            t0_ns: tracer.now_ns(),
            queue_ns: 0,
        })
    }
}

/// Why a waiting client got no result.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The query itself failed (impossible evidence, malformed
    /// likelihood, …) — the serving layer worked fine.
    Inference(InferenceError),
    /// The server went away before answering (shut down mid-flight or a
    /// worker died); the request was accepted but never completed.
    Abandoned,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Inference(e) => write!(f, "inference failed: {e}"),
            ServeError::Abandoned => f.write_str("request abandoned: server went away"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Inference(e) => Some(e),
            ServeError::Abandoned => None,
        }
    }
}

impl From<InferenceError> for ServeError {
    fn from(e: InferenceError) -> Self {
        ServeError::Inference(e)
    }
}

/// Why a submission was not accepted. The rejected [`Query`] is handed
/// back so the caller can retry, reroute, or degrade.
#[derive(Debug, Clone, PartialEq)]
pub struct SubmitError {
    query: Query,
    model: String,
    kind: SubmitErrorKind,
}

/// The rejection reason of a [`SubmitError`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitErrorKind {
    /// The bounded queue is at capacity (`try_submit` only — `submit`
    /// blocks instead).
    QueueFull,
    /// The server has been shut down.
    ShutDown,
    /// No model with the requested id is resident in the registry
    /// (never loaded, removed, or evicted).
    UnknownModel,
}

impl SubmitError {
    pub(crate) fn new(query: Query, model: String, kind: SubmitErrorKind) -> Self {
        SubmitError { query, model, kind }
    }

    /// The rejection reason.
    pub fn kind(&self) -> SubmitErrorKind {
        self.kind
    }

    /// The model id the submission was routed to (the single-model
    /// compatibility surface in `fastbn-serve` always routes to its
    /// `SINGLE_MODEL_ID`).
    pub fn model(&self) -> &str {
        &self.model
    }

    /// Recovers the rejected query.
    pub fn into_query(self) -> Query {
        self.query
    }
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.kind {
            SubmitErrorKind::QueueFull => f.write_str("request rejected: queue at capacity"),
            SubmitErrorKind::ShutDown => f.write_str("request rejected: server shut down"),
            SubmitErrorKind::UnknownModel => {
                write!(
                    f,
                    "request rejected: no model {:?} in the registry",
                    self.model
                )
            }
        }
    }
}

impl std::error::Error for SubmitError {}

/// A handle to one in-flight request. Wait on it for the result — or
/// drop it to cancel the request (workers skip cancelled requests that
/// have not started and discard results that finish after the drop).
#[must_use = "dropping a Pending handle cancels the request"]
pub struct Pending {
    rx: SlotReceiver<Result<QueryResult, InferenceError>>,
}

impl Pending {
    /// Blocks until the result arrives (or the server goes away).
    pub fn wait(self) -> Result<QueryResult, ServeError> {
        match self.rx.wait() {
            Ok(result) => result.map_err(ServeError::from),
            Err(WaitError::Abandoned) => Err(ServeError::Abandoned),
        }
    }

    /// Waits up to `timeout`; on expiry the handle is returned so the
    /// caller can keep waiting — or drop it, which cancels the request.
    pub fn wait_timeout(self, timeout: Duration) -> Result<Result<QueryResult, ServeError>, Self> {
        match self.rx.wait_timeout(timeout) {
            Ok(Ok(result)) => Ok(result.map_err(ServeError::from)),
            Ok(Err(WaitError::Abandoned)) => Ok(Err(ServeError::Abandoned)),
            Err(rx) => Err(Pending { rx }),
        }
    }
}

impl std::fmt::Debug for Pending {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pending").finish_non_exhaustive()
    }
}

/// Configures and starts a [`RoutedServer`]; the micro-batching knobs
/// are identical to the single-model server's.
pub struct RoutedServerBuilder {
    registry: Arc<Registry>,
    workers: usize,
    max_batch: usize,
    max_delay: Duration,
    queue_capacity: Option<usize>,
    dedup: bool,
    metrics: Option<Arc<MetricsRegistry>>,
    timing: bool,
    tracer: Option<Arc<Tracer>>,
}

impl RoutedServerBuilder {
    /// Number of worker threads (default 1). Workers dispatch
    /// independent windows concurrently; every dispatched batch runs
    /// on the registry's shared pool.
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Largest micro-batch window a worker collects (default 16). A
    /// window closes as soon as it holds this many requests, without
    /// waiting out the delay. Mixed windows dispatch one batch per
    /// model in them.
    pub fn max_batch(mut self, max_batch: usize) -> Self {
        self.max_batch = max_batch.max(1);
        self
    }

    /// Longest a worker waits, measured from the first request it
    /// pops, for more requests before dispatching a partial window
    /// (default 500µs). Zero still coalesces whatever is already
    /// queued.
    pub fn max_delay(mut self, max_delay: Duration) -> Self {
        self.max_delay = max_delay;
        self
    }

    /// Bounded queue capacity (default `2 × workers × max_batch`).
    /// When full, [`RoutedServer::submit`] blocks and
    /// [`RoutedServer::try_submit`] rejects — backpressure instead of
    /// unbounded buffering.
    pub fn queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = Some(capacity.max(1));
        self
    }

    /// Whether a window deduplicates identical in-flight requests of
    /// the **same model** (default on; equal canonical `QueryKey`s on
    /// the same solver imply bit-identical results, so one computation
    /// fans out to every waiter).
    pub fn dedup(mut self, dedup: bool) -> Self {
        self.dedup = dedup;
        self
    }

    /// Uses an existing [`MetricsRegistry`] instead of creating one —
    /// e.g. to aggregate several servers, or to pass a
    /// [`MetricsRegistry::counters_only`] registry built elsewhere.
    /// Overrides [`RoutedServerBuilder::telemetry`].
    pub fn metrics(mut self, metrics: Arc<MetricsRegistry>) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// Whether the server records per-stage latency histograms
    /// (default **on**). Off builds a [`MetricsRegistry::counters_only`]
    /// registry: the traffic counters stay live (the [`ServerStats`]
    /// accounting contract does not depend on this switch) but no
    /// clocks are read and no histograms recorded on the hot path.
    /// Ignored when [`RoutedServerBuilder::metrics`] injects a
    /// registry — the injected registry's own mode rules.
    pub fn telemetry(mut self, enabled: bool) -> Self {
        self.timing = enabled;
        self
    }

    /// Installs a request [`Tracer`] (default none — and with none, the
    /// serving hot path is exactly the pre-tracing one). With a tracer,
    /// every request gets a trace id and the always-on slow-query log;
    /// head-sampled requests (see [`fastbn_telemetry::TraceConfig`])
    /// additionally record a span tree — admission → queue → window →
    /// compute → delivery, plus the engine's collect/distribute phases.
    /// [`RoutedServerBuilder::telemetry`]`(false)` forces the sampling
    /// rate to zero but keeps the slow-query log exact.
    pub fn tracer(mut self, tracer: Arc<Tracer>) -> Self {
        self.tracer = Some(tracer);
        self
    }

    /// Starts the workers and returns the running server.
    pub fn build(self) -> RoutedServer {
        let queue_capacity = self
            .queue_capacity
            .unwrap_or(2 * self.workers * self.max_batch)
            .max(1);
        let (sender, receiver) = crossbeam_channel::bounded::<Request>(queue_capacity);
        let metrics = self.metrics.unwrap_or_else(|| {
            Arc::new(if self.timing {
                MetricsRegistry::new()
            } else {
                MetricsRegistry::counters_only()
            })
        });
        let telemetry = Arc::new(ServerTelemetry::over(metrics, self.tracer));
        let workers = (0..self.workers)
            .map(|i| {
                let rx = receiver.clone();
                let telemetry = Arc::clone(&telemetry);
                let max_batch = self.max_batch;
                let max_delay = self.max_delay;
                let dedup = self.dedup;
                std::thread::Builder::new()
                    .name(format!("fastbn-route-{i}"))
                    .spawn(move || worker_loop(rx, max_batch, max_delay, dedup, &telemetry))
                    .expect("failed to spawn fastbn routing worker")
            })
            .collect();
        RoutedServer {
            queue: RwLock::new(Some(sender)),
            workers: Mutex::new(workers),
            telemetry,
            models: RwLock::new(HashMap::new()),
            registry: self.registry,
            worker_count: self.workers,
            max_batch: self.max_batch,
            max_delay: self.max_delay,
            queue_capacity,
            dedup: self.dedup,
        }
    }
}

/// A micro-batching serving front end routing requests by model id
/// over a shared [`Registry`].
///
/// Results are **bit-identical** to running each query alone on a
/// standalone single-model `Solver` of the same engine and width —
/// routing, mixed windows, pool sharing, and worker scheduling are
/// invisible to clients (asserted by `tests/registry.rs`).
///
/// ```
/// use std::sync::Arc;
/// use std::time::Duration;
/// use fastbn_bayesnet::datasets;
/// use fastbn_inference::Query;
/// use fastbn_registry::{ModelConfig, Registry, RoutedServer};
///
/// let registry = Arc::new(Registry::builder().threads(2).build());
/// registry.load("asia", &datasets::asia(), &ModelConfig::new()).unwrap();
/// registry.load("sprinkler", &datasets::sprinkler(), &ModelConfig::new()).unwrap();
///
/// let server = RoutedServer::builder(Arc::clone(&registry))
///     .workers(2)
///     .max_batch(8)
///     .max_delay(Duration::from_micros(200))
///     .build();
///
/// // Mixed traffic: requests carry the model id they are for.
/// let pending: Vec<_> = (0..8)
///     .map(|i| {
///         let model = if i % 2 == 0 { "asia" } else { "sprinkler" };
///         server.submit(model, Query::new()).unwrap()
///     })
///     .collect();
/// for p in pending {
///     assert!(p.wait().unwrap().posteriors().unwrap().prob_evidence > 0.0);
/// }
///
/// // Per-model accounting rides along with the global counters.
/// server.shutdown();
/// let per_model = server.model_stats();
/// assert_eq!(per_model.len(), 2);
/// assert!(per_model.iter().all(|m| m.submitted == m.completed + m.cancelled));
/// ```
pub struct RoutedServer {
    /// `Some` while accepting; `None` after shutdown. Submitters clone
    /// the sender out of the read lock, so a blocking `submit` never
    /// holds the lock while parked on a full queue.
    queue: RwLock<Option<crossbeam_channel::Sender<Request>>>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    telemetry: Arc<ServerTelemetry>,
    /// Per-model counter blocks, created on a model's first
    /// submission. Kept across unload/reload so `model_stats` totals
    /// stay monotonic (the drain invariant needs history, not
    /// residency).
    models: RwLock<HashMap<String, Arc<ModelTrack>>>,
    registry: Arc<Registry>,
    worker_count: usize,
    max_batch: usize,
    max_delay: Duration,
    queue_capacity: usize,
    dedup: bool,
}

impl RoutedServer {
    /// Starts a routed server with default settings (1 worker,
    /// windows of up to 16 requests × 500µs). Use
    /// [`RoutedServer::builder`] to tune.
    pub fn new(registry: Arc<Registry>) -> RoutedServer {
        RoutedServer::builder(registry).build()
    }

    /// Starts configuring a routed server over `registry`.
    pub fn builder(registry: Arc<Registry>) -> RoutedServerBuilder {
        RoutedServerBuilder {
            registry,
            workers: 1,
            max_batch: 16,
            max_delay: Duration::from_micros(500),
            queue_capacity: None,
            dedup: true,
            metrics: None,
            timing: true,
            tracer: None,
        }
    }

    /// Submits a query for `model`, **blocking while the queue is
    /// full** (backpressure). Fails with
    /// [`SubmitErrorKind::UnknownModel`] when the id is not resident,
    /// or [`SubmitErrorKind::ShutDown`] after [`RoutedServer::shutdown`]
    /// — the query is handed back either way.
    pub fn submit(&self, model: &str, query: Query) -> Result<Pending, SubmitError> {
        let start = self.telemetry.now();
        let (sender, request, rx) = self.admit(model, query, start)?;
        match sender.send(request) {
            Ok(()) => {
                if let Some(start) = start {
                    self.telemetry
                        .stages
                        .admission_ns
                        .record_duration(start.elapsed());
                }
                Ok(Pending { rx })
            }
            Err(crossbeam_channel::SendError(request)) => {
                Err(self.retract(request, SubmitErrorKind::ShutDown))
            }
        }
    }

    /// Submits without blocking; a full queue rejects with
    /// [`SubmitErrorKind::QueueFull`] (the query handed back) instead
    /// of waiting.
    pub fn try_submit(&self, model: &str, query: Query) -> Result<Pending, SubmitError> {
        let start = self.telemetry.now();
        let (sender, request, rx) = self.admit(model, query, start)?;
        match sender.try_send(request) {
            Ok(()) => {
                if let Some(start) = start {
                    self.telemetry
                        .stages
                        .admission_ns
                        .record_duration(start.elapsed());
                }
                Ok(Pending { rx })
            }
            Err(TrySendError::Full(request)) => {
                self.telemetry.counters.rejected.inc();
                Err(self.retract(request, SubmitErrorKind::QueueFull))
            }
            Err(TrySendError::Disconnected(request)) => {
                Err(self.retract(request, SubmitErrorKind::ShutDown))
            }
        }
    }

    /// The shared admission path: resolve the model, pre-count the
    /// submission (global and per-model, **before** the send — a
    /// worker may complete the request before the submitter runs
    /// again, and `completed` must never lead `submitted` in any
    /// snapshot), and assemble the request.
    #[allow(clippy::type_complexity)]
    fn admit(
        &self,
        model: &str,
        query: Query,
        submitted_at: Option<Instant>,
    ) -> Result<
        (
            crossbeam_channel::Sender<Request>,
            Request,
            SlotReceiver<Result<QueryResult, InferenceError>>,
        ),
        SubmitError,
    > {
        let Some(sender) = self.sender() else {
            return Err(SubmitError::new(
                query,
                model.to_string(),
                SubmitErrorKind::ShutDown,
            ));
        };
        let Some(solver) = self.registry.get(model) else {
            return Err(SubmitError::new(
                query,
                model.to_string(),
                SubmitErrorKind::UnknownModel,
            ));
        };
        let track = self.track(model);
        self.telemetry.counters.submitted.inc_seq();
        track.counters.submitted.inc_seq();
        let trace = self.telemetry.begin_request();
        let (reply, rx) = slot();
        let request = Request {
            solver,
            model: track,
            query,
            reply,
            submitted_at,
            trace,
        };
        Ok((sender, request, rx))
    }

    /// Undoes a pre-counted submission whose send failed, recovering
    /// the query into a typed error.
    fn retract(&self, request: Request, kind: SubmitErrorKind) -> SubmitError {
        self.telemetry.counters.submitted.dec_seq();
        request.model.counters.submitted.dec_seq();
        SubmitError::new(request.query, request.model.id.clone(), kind)
    }

    /// The counter block for `model`, created on first use.
    fn track(&self, model: &str) -> Arc<ModelTrack> {
        if let Some(track) = self
            .models
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .get(model)
        {
            return Arc::clone(track);
        }
        let mut models = self.models.write().unwrap_or_else(PoisonError::into_inner);
        Arc::clone(models.entry(model.to_string()).or_insert_with(|| {
            Arc::new(ModelTrack {
                id: model.to_string(),
                counters: ModelCounters::in_registry(&self.telemetry.metrics, model),
            })
        }))
    }

    /// Stops accepting, lets the workers drain every already-accepted
    /// request, and joins them. Idempotent; also runs on drop.
    /// Requests still queued at this point are *completed*, not
    /// discarded — only submissions after the call are rejected.
    pub fn shutdown(&self) {
        drop(
            self.queue
                .write()
                .unwrap_or_else(PoisonError::into_inner)
                .take(),
        );
        let mut workers = self.workers.lock().unwrap_or_else(PoisonError::into_inner);
        for handle in workers.drain(..) {
            let _ = handle.join();
        }
    }

    /// True once [`RoutedServer::shutdown`] has run (or started).
    pub fn is_shut_down(&self) -> bool {
        self.sender().is_none()
    }

    /// A snapshot of the global traffic counters.
    pub fn stats(&self) -> ServerStats {
        self.telemetry.counters.snapshot()
    }

    /// The server's metrics registry: the traffic counters
    /// (`serve.submitted`, `serve.model.<id>.completed`, …) and —
    /// unless built with [`RoutedServerBuilder::telemetry`]`(false)` —
    /// the per-stage latency histograms (`serve.stage.*_ns`,
    /// `serve.request.total_ns`, `serve.batch.size`). These are the
    /// *same cells* [`RoutedServer::stats`] snapshots.
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.telemetry.metrics
    }

    /// A consistent export snapshot: refreshes the registry-side
    /// gauges (per-model cache stats under `registry.model.<id>.*`,
    /// shared-pool occupancy under `registry.pool.*`) and then
    /// snapshots the whole registry. See
    /// [`MetricsSnapshot::to_json`] for the stable serialization.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.registry
            .export_metrics(&self.telemetry.metrics, "registry");
        self.telemetry.metrics.snapshot()
    }

    /// The per-model traffic breakdown, sorted by model id. Covers
    /// every model ever submitted to (unloaded models keep their
    /// history). The rows sum to the global [`RoutedServer::stats`]
    /// stage counters, and after a drain each row satisfies
    /// `submitted == completed + cancelled` on its own.
    pub fn model_stats(&self) -> Vec<ModelStats> {
        let mut rows: Vec<ModelStats> = self
            .models
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .values()
            .map(|track| track.counters.snapshot(&track.id))
            .collect();
        rows.sort_unstable_by(|a, b| a.model.cmp(&b.model));
        rows
    }

    /// One model's traffic counters, if it has ever been submitted to.
    pub fn model_stats_for(&self, model: &str) -> Option<ModelStats> {
        self.models
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .get(model)
            .map(|track| track.counters.snapshot(&track.id))
    }

    /// The request tracer, when one was installed via
    /// [`RoutedServerBuilder::tracer`] — hand it to an
    /// [`fastbn_telemetry::IntrospectionBuilder`] to serve
    /// `/traces/recent` and `/traces/slow` live.
    pub fn tracer(&self) -> Option<&Arc<Tracer>> {
        self.telemetry.tracer.as_ref()
    }

    /// The registry requests are routed against.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.worker_count
    }

    /// Largest micro-batch window a worker collects.
    pub fn max_batch(&self) -> usize {
        self.max_batch
    }

    /// The micro-batching window measured from a window's first
    /// request.
    pub fn max_delay(&self) -> Duration {
        self.max_delay
    }

    /// Bounded queue capacity.
    pub fn queue_capacity(&self) -> usize {
        self.queue_capacity
    }

    /// Whether windows deduplicate identical in-flight requests.
    pub fn dedup(&self) -> bool {
        self.dedup
    }

    fn sender(&self) -> Option<crossbeam_channel::Sender<Request>> {
        self.queue
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .as_ref()
            .cloned()
    }
}

impl std::fmt::Debug for RoutedServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RoutedServer")
            .field("registry", &self.registry)
            .field("workers", &self.worker_count)
            .field("max_batch", &self.max_batch)
            .field("max_delay", &self.max_delay)
            .field("queue_capacity", &self.queue_capacity)
            .field("dedup", &self.dedup)
            .field("shut_down", &self.is_shut_down())
            .finish()
    }
}

impl Drop for RoutedServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// One worker: pop a request, hold the window open until `max_batch`
/// requests or `max_delay` elapsed, dispatch the window grouped by
/// model, repeat; exit (after a final dispatch) once the queue is
/// closed and drained.
fn worker_loop(
    rx: crossbeam_channel::Receiver<Request>,
    max_batch: usize,
    max_delay: Duration,
    dedup: bool,
    telemetry: &ServerTelemetry,
) {
    let mut window: Vec<Request> = Vec::with_capacity(max_batch);
    loop {
        let mut first = match rx.recv() {
            Ok(request) => request,
            Err(_) => return, // queue closed and drained
        };
        telemetry.counters.dequeued.inc_seq();
        record_queue_wait(&mut first, telemetry);
        let window_start = telemetry.now();
        let window_t0 = telemetry.tracer.as_deref().map(Tracer::now_ns);
        window.push(first);
        let deadline = saturating_deadline(max_delay);
        let mut disconnected = false;
        while window.len() < max_batch {
            match rx.recv_deadline(deadline) {
                Ok(mut request) => {
                    telemetry.counters.dequeued.inc_seq();
                    record_queue_wait(&mut request, telemetry);
                    window.push(request);
                }
                Err(RecvTimeoutError::Timeout) => break,
                Err(RecvTimeoutError::Disconnected) => {
                    disconnected = true;
                    break;
                }
            }
        }
        if let Some(start) = window_start {
            telemetry.stages.window_ns.record_duration(start.elapsed());
        }
        record_window_spans(&window, window_t0, telemetry);
        dispatch_window(&mut window, dedup, telemetry);
        if disconnected {
            return;
        }
    }
}

/// Records one window-stage span per sampled request in the window
/// (same interval for all of them — they shared the window; `tag`
/// carries the window size).
fn record_window_spans(window: &[Request], window_t0: Option<u64>, telemetry: &ServerTelemetry) {
    let (Some(tracer), Some(start)) = (telemetry.tracer.as_deref(), window_t0) else {
        return;
    };
    if !window.iter().any(|r| r.trace.is_some_and(|rt| rt.sampled)) {
        return;
    }
    let dur = tracer.now_ns().saturating_sub(start);
    for request in window {
        let Some(rt) = request.trace.filter(|rt| rt.sampled) else {
            continue;
        };
        tracer.record(&SpanRecord {
            trace: rt.trace,
            span: tracer.next_span(),
            parent: rt.root,
            name: SPAN_WINDOW,
            start_ns: start,
            dur_ns: dur,
            tag: window.len() as u64,
            aux: 0,
        });
    }
}

/// Records how long one just-popped request sat on the queue — into
/// the stage histogram, and (with a tracer) into the request's
/// [`ReqTrace`] for the slow-query log, plus a queue-wait span when
/// the request is sampled.
fn record_queue_wait(request: &mut Request, telemetry: &ServerTelemetry) {
    if let Some(submitted_at) = request.submitted_at {
        telemetry
            .stages
            .queue_wait_ns
            .record_duration(submitted_at.elapsed());
    }
    if let (Some(tracer), Some(rt)) = (telemetry.tracer.as_deref(), request.trace.as_mut()) {
        rt.queue_ns = tracer.now_ns().saturating_sub(rt.t0_ns);
        if rt.sampled {
            tracer.record(&SpanRecord {
                trace: rt.trace,
                span: tracer.next_span(),
                parent: rt.root,
                name: SPAN_QUEUE_WAIT,
                start_ns: rt.t0_ns,
                dur_ns: rt.queue_ns,
                tag: 0,
                aux: 0,
            });
        }
    }
}

/// Dispatches one collected window: drop cancelled requests, group the
/// rest by **(model id, solver instance)** — the model-track half
/// keeps per-model accounting exact when one solver is registered
/// under several ids, the instance half keeps a hot-reloaded model
/// from ever sharing a batch (or a dedup slot) with its predecessor —
/// then run each group. Groups are isolated against engine panics: a
/// panicking dispatch abandons only its own group's requests
/// ([`ServeError::Abandoned`]) — other models in the window, and the
/// worker itself, keep going.
fn dispatch_window(window: &mut Vec<Request>, dedup: bool, telemetry: &ServerTelemetry) {
    window.retain(|request| {
        let live = !request.reply.is_cancelled();
        if !live {
            telemetry.counters.cancelled.inc_seq();
            request.model.counters.cancelled.inc_seq();
        }
        live
    });
    if window.is_empty() {
        return;
    }
    let mut groups: Vec<Vec<Request>> = Vec::new();
    let mut by_solver: HashMap<(*const ModelTrack, *const Solver), usize> = HashMap::new();
    for request in window.drain(..) {
        let key = (Arc::as_ptr(&request.model), Arc::as_ptr(&request.solver));
        match by_solver.entry(key) {
            std::collections::hash_map::Entry::Occupied(slot) => {
                groups[*slot.get()].push(request);
            }
            std::collections::hash_map::Entry::Vacant(slot) => {
                slot.insert(groups.len());
                groups.push(vec![request]);
            }
        }
    }
    for group in groups {
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            dispatch_group(group, dedup, telemetry)
        }));
        if outcome.is_err() {
            // The group's replies died mid-unwind (their clients see
            // `Abandoned`); the worker and the window's other models
            // are unaffected.
            telemetry.counters.worker_panics.inc();
        }
    }
}

/// Runs one model's share of a window as a single `QueryBatch` and
/// delivers each slot's result. With `dedup` on, requests whose
/// canonical `QueryKey`s match collapse into one computed slot whose
/// result fans out to every waiter (bit-identical by the key
/// contract — and only ever within one solver instance).
/// One undelivered reply: the oneshot plus the request's acceptance
/// time (so delivery can record the end-to-end span).
type Waiter = (
    SlotSender<Result<QueryResult, InferenceError>>,
    Option<Instant>,
    Option<ReqTrace>,
);

/// Group-level context delivery passes to the slow-query log: the
/// batch the request rode in and that batch's compute time, on the
/// tracer's clock.
struct GroupTrace {
    compute_ns: u64,
    batch: u64,
}

fn dispatch_group(group: Vec<Request>, dedup: bool, telemetry: &ServerTelemetry) {
    debug_assert!(!group.is_empty());
    let solver = Arc::clone(&group[0].solver);
    let model = Arc::clone(&group[0].model);
    telemetry.counters.batches.inc();
    model.counters.batches.inc();
    telemetry.stages.batch_size.record(group.len() as u64);
    // One computed slot per distinct key; every reply hangs off its slot.
    let mut queries: Vec<Query> = Vec::with_capacity(group.len());
    let mut waiters: Vec<Vec<Waiter>> = Vec::with_capacity(group.len());
    if dedup {
        let mut seen: HashMap<QueryKey, usize> = HashMap::new();
        for request in group {
            match seen.entry(request.query.key()) {
                std::collections::hash_map::Entry::Occupied(slot) => {
                    telemetry.counters.dedups.inc();
                    model.counters.dedups.inc();
                    waiters[*slot.get()].push((request.reply, request.submitted_at, request.trace));
                }
                std::collections::hash_map::Entry::Vacant(slot) => {
                    slot.insert(queries.len());
                    queries.push(request.query);
                    waiters.push(vec![(request.reply, request.submitted_at, request.trace)]);
                }
            }
        }
    } else {
        for request in group {
            queries.push(request.query);
            waiters.push(vec![(request.reply, request.submitted_at, request.trace)]);
        }
    }
    let batch = QueryBatch::from(queries);
    // Per-slot engine trace contexts: the slot's first sampled waiter
    // is its representative — its trace gets the compute span and the
    // engine collect/distribute spans (dedup followers share the
    // result, not the span tree).
    let mut ctxs: Vec<Option<TraceContext>> = Vec::new();
    let mut compute_spans: Vec<(u64, u64, u64)> = Vec::new(); // (trace, span, root)
    if let Some(tracer) = telemetry.tracer.as_ref() {
        ctxs = waiters
            .iter()
            .map(|slot_waiters| {
                let rt = slot_waiters
                    .iter()
                    .find_map(|(_, _, rt)| rt.filter(|rt| rt.sampled))?;
                let span = tracer.next_span();
                compute_spans.push((rt.trace, span, rt.root));
                Some(TraceContext {
                    tracer: Arc::clone(tracer),
                    trace: rt.trace,
                    parent: span,
                })
            })
            .collect();
    }
    let traced = ctxs.iter().any(Option::is_some);
    let compute_t0 = telemetry.tracer.as_deref().map(Tracer::now_ns);
    let compute_start = telemetry.now();
    let results = if traced {
        solver.query_batch_traced(&batch, &ctxs)
    } else {
        solver.query_batch(&batch)
    };
    if let Some(start) = compute_start {
        telemetry.stages.compute_ns.record_duration(start.elapsed());
    }
    let group_trace = match (telemetry.tracer.as_deref(), compute_t0) {
        (Some(tracer), Some(t0)) => {
            let compute_ns = tracer.now_ns().saturating_sub(t0);
            for (trace, span, root) in compute_spans {
                tracer.record(&SpanRecord {
                    trace,
                    span,
                    parent: root,
                    name: SPAN_COMPUTE,
                    start_ns: t0,
                    dur_ns: compute_ns,
                    tag: batch.len() as u64,
                    aux: 0,
                });
            }
            Some(GroupTrace {
                compute_ns,
                batch: batch.len() as u64,
            })
        }
        _ => None,
    };
    let delivery_start = telemetry.now();
    for (replies, result) in waiters.into_iter().zip(results) {
        let mut replies = replies.into_iter();
        let last = replies.next_back();
        for waiter in replies {
            deliver(
                waiter,
                result.clone(),
                telemetry,
                &model,
                group_trace.as_ref(),
            );
        }
        if let Some(waiter) = last {
            // The representative (or lone) waiter takes the result
            // without a clone.
            deliver(waiter, result, telemetry, &model, group_trace.as_ref());
        }
    }
    if let Some(start) = delivery_start {
        telemetry
            .stages
            .delivery_ns
            .record_duration(start.elapsed());
    }
}

/// Sends one result through its oneshot, counting the outcome globally
/// and against the request's model; a delivered result also records
/// the request's end-to-end latency. With a tracer, a delivered
/// request closes out its trace: a delivery span and the root request
/// span when sampled, and — for **every** request over the threshold,
/// sampled or not — a slow-query log entry.
fn deliver(
    (reply, submitted_at, trace): Waiter,
    result: Result<QueryResult, InferenceError>,
    telemetry: &ServerTelemetry,
    model: &ModelTrack,
    group: Option<&GroupTrace>,
) {
    let tracer = telemetry.tracer.as_deref();
    let send_t0 = match (tracer, &trace) {
        (Some(tracer), Some(rt)) if rt.sampled => Some(tracer.now_ns()),
        _ => None,
    };
    let delivered = reply.send(result).is_ok();
    if delivered {
        telemetry.counters.completed.inc_seq();
        model.counters.completed.inc_seq();
        if let Some(submitted_at) = submitted_at {
            telemetry
                .stages
                .total_ns
                .record_duration(submitted_at.elapsed());
        }
    } else {
        // The handle was dropped while the batch ran: result
        // discarded, request counted as cancelled.
        telemetry.counters.cancelled.inc_seq();
        model.counters.cancelled.inc_seq();
    }
    let (Some(tracer), Some(rt)) = (tracer, trace) else {
        return;
    };
    if !delivered {
        // Cancelled mid-batch: no root span, no slow entry — the
        // request never produced a client-visible latency.
        return;
    }
    let end = tracer.now_ns();
    let total_ns = end.saturating_sub(rt.t0_ns);
    if rt.sampled {
        if let Some(send_t0) = send_t0 {
            tracer.record(&SpanRecord {
                trace: rt.trace,
                span: tracer.next_span(),
                parent: rt.root,
                name: SPAN_DELIVERY,
                start_ns: send_t0,
                dur_ns: end.saturating_sub(send_t0),
                tag: 0,
                aux: 0,
            });
        }
        // The root request span last, now that the total is known;
        // `tag` carries the batch size, `aux` the interned model id.
        tracer.record(&SpanRecord {
            trace: rt.trace,
            span: rt.root,
            parent: 0,
            name: SPAN_REQUEST,
            start_ns: rt.t0_ns,
            dur_ns: total_ns,
            tag: group.map_or(0, |g| g.batch),
            aux: u64::from(tracer.intern(&model.id).0),
        });
    }
    if total_ns > tracer.slow_threshold_ns() {
        tracer.record_slow(SlowEntry {
            trace: rt.trace,
            model: model.id.clone(),
            total_ns,
            queue_ns: rt.queue_ns,
            compute_ns: group.map_or(0, |g| g.compute_ns),
            batch: group.map_or(0, |g| g.batch),
            sampled: rt.sampled,
            at_ns: end,
        });
    }
}
