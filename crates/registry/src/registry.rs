//! The [`Registry`]: a named set of compiled models behind **one
//! shared worker pool**, with hot load/unload while traffic is in
//! flight and LRU eviction of idle models under a capacity bound.
//!
//! # Why a registry
//!
//! A parallel engine built the ordinary way spawns its own
//! [`ThreadPool`]; N models served that way mean `N × t` worker
//! threads fighting the scheduler for `t` cores. The registry instead
//! owns one pool ([`ThreadPool::shared`]) and compiles every model
//! onto it ([`SolverBuilder::pool`](fastbn_inference::SolverBuilder::pool)),
//! so mixed traffic across many networks contends for exactly the
//! machine's cores. Regions from different models interleave on the
//! team; each model's bits are identical to a private pool of the same
//! width (the chunk layout depends only on schedule and width).
//!
//! # Hot load / unload
//!
//! Models are handed out as `Arc<Solver>`: [`Registry::get`] clones
//! the `Arc`, so [`Registry::remove`] (or an LRU eviction) only drops
//! the *registry's* reference. Queries already holding the solver —
//! in-flight windows, open sessions — run to completion untouched;
//! the model's memory is freed when the last holder finishes. That is
//! the whole unload-isolation story, and `tests/registry.rs` asserts
//! it bitwise.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, PoisonError, RwLock};

use fastbn_bayesnet::BayesianNetwork;
use fastbn_inference::{CacheConfig, EngineKind, Solver};
use fastbn_jtree::JtreeOptions;
use fastbn_parallel::ThreadPool;

/// How one model should be compiled by [`Registry::load`].
#[derive(Debug, Clone, Default)]
pub struct ModelConfig {
    engine: Option<EngineKind>,
    cache: Option<CacheConfig>,
    jtree: JtreeOptions,
}

impl ModelConfig {
    /// Starts from the registry defaults: the Fast-BNI-par hybrid
    /// engine (the shared pool exists to be used), no query cache,
    /// default junction-tree options.
    pub fn new() -> Self {
        ModelConfig::default()
    }

    /// Selects the propagation engine (default: `EngineKind::Hybrid`).
    /// Sequential kinds are allowed; they simply never touch the
    /// shared pool.
    pub fn engine(mut self, kind: EngineKind) -> Self {
        self.engine = Some(kind);
        self
    }

    /// Enables this model's own query-result cache — caching is
    /// **per-model**: each solver keys and bounds its cache
    /// independently, so one chatty model cannot evict another's hot
    /// entries.
    pub fn cache(mut self, config: CacheConfig) -> Self {
        self.cache = Some(config);
        self
    }

    /// Junction-tree construction options for this model.
    pub fn jtree_options(mut self, options: JtreeOptions) -> Self {
        self.jtree = options;
        self
    }
}

/// Why a registry operation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegistryError {
    /// The registry is at its model capacity and every resident model
    /// is busy (referenced outside the registry), so none could be
    /// evicted to make room.
    Full {
        /// The configured capacity bound.
        capacity: usize,
    },
}

impl std::fmt::Display for RegistryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegistryError::Full { capacity } => write!(
                f,
                "registry full: all {capacity} resident models are busy, none evictable"
            ),
        }
    }
}

impl std::error::Error for RegistryError {}

/// One resident model: the compiled solver plus its LRU stamp.
struct Entry {
    solver: Arc<Solver>,
    /// Tick of the last `get` (or the insert); smallest = least
    /// recently used.
    last_used: AtomicU64,
}

/// Where the shared pool comes from. The pool is created lazily — a
/// registry that only ever holds pre-built solvers (the single-model
/// serve shim) never spawns a worker team of its own.
enum PoolSource {
    /// Spawn a pool of this width on first use.
    Width(usize),
    /// An injected pool, possibly shared with other tenants.
    Injected(Arc<ThreadPool>),
}

/// Configures a [`Registry`].
pub struct RegistryBuilder {
    source: PoolSource,
    capacity: Option<usize>,
}

impl RegistryBuilder {
    /// Width of the shared worker pool created on first
    /// [`Registry::load`] (default: the machine's logical CPUs).
    /// Overridden by [`RegistryBuilder::pool`].
    pub fn threads(mut self, threads: usize) -> Self {
        self.source = PoolSource::Width(threads.max(1));
        self
    }

    /// Runs every loaded model on an existing pool instead of creating
    /// one — e.g. to share a team with models compiled elsewhere.
    pub fn pool(mut self, pool: Arc<ThreadPool>) -> Self {
        self.source = PoolSource::Injected(pool);
        self
    }

    /// Bounds the number of resident models (default: unbounded).
    /// Inserting past the bound evicts the least-recently-used *idle*
    /// model (one no outside handle references); when every resident
    /// model is busy the insert fails with [`RegistryError::Full`]
    /// instead of evicting work out from under a query.
    pub fn capacity(mut self, capacity: usize) -> Self {
        self.capacity = Some(capacity.max(1));
        self
    }

    /// Finishes the builder.
    pub fn build(self) -> Registry {
        Registry {
            pool: OnceLock::new(),
            source: self.source,
            capacity: self.capacity,
            ticks: AtomicU64::new(0),
            models: RwLock::new(HashMap::new()),
        }
    }
}

/// A set of named compiled models (`model id → Arc<Solver>`) sharing
/// one worker pool. `Send + Sync`; wrap it in an `Arc` and share it
/// between the loading side and any number of
/// [`RoutedServer`](crate::RoutedServer)s or direct callers.
///
/// ```
/// use fastbn_bayesnet::datasets;
/// use fastbn_inference::Query;
/// use fastbn_registry::{ModelConfig, Registry};
///
/// let registry = Registry::builder().threads(2).build();
/// registry.load("asia", &datasets::asia(), &ModelConfig::new()).unwrap();
/// registry.load("sprinkler", &datasets::sprinkler(), &ModelConfig::new()).unwrap();
/// assert_eq!(registry.len(), 2);
///
/// // Both models answer through the same worker team.
/// let asia = registry.get("asia").unwrap();
/// let sprinkler = registry.get("sprinkler").unwrap();
/// assert!(std::sync::Arc::ptr_eq(
///     &asia.pool_handle().unwrap(),
///     &sprinkler.pool_handle().unwrap(),
/// ));
/// assert!(asia.query(&Query::new()).is_ok());
///
/// // Unload is just dropping the registry's reference; the handle we
/// // still hold keeps answering.
/// registry.remove("asia").unwrap();
/// assert!(registry.get("asia").is_none());
/// assert!(asia.query(&Query::new()).is_ok());
/// ```
pub struct Registry {
    pool: OnceLock<Arc<ThreadPool>>,
    source: PoolSource,
    capacity: Option<usize>,
    /// LRU clock: bumped by every `get`/insert.
    ticks: AtomicU64,
    models: RwLock<HashMap<String, Entry>>,
}

impl Registry {
    /// A registry with defaults: shared pool as wide as the machine,
    /// unbounded capacity.
    pub fn new() -> Registry {
        Registry::builder().build()
    }

    /// Starts configuring a registry.
    pub fn builder() -> RegistryBuilder {
        RegistryBuilder {
            source: PoolSource::Width(fastbn_parallel::available_threads()),
            capacity: None,
        }
    }

    /// The shared worker pool, created on first use. Hand it to
    /// [`SolverBuilder::pool`](fastbn_inference::SolverBuilder::pool)
    /// to compile a model onto this registry's team yourself (then
    /// [`Registry::insert`] it).
    pub fn pool_handle(&self) -> Arc<ThreadPool> {
        Arc::clone(self.pool.get_or_init(|| match &self.source {
            PoolSource::Width(width) => ThreadPool::shared(*width),
            PoolSource::Injected(pool) => Arc::clone(pool),
        }))
    }

    /// Compiles `net` onto the shared pool and registers it under `id`
    /// (replacing any previous model with that id — hot reload). This
    /// is the expensive step (triangulation, initial potentials, task
    /// plans); it runs outside the registry lock, so traffic on other
    /// models is never stalled by a load.
    ///
    /// Returns the compiled solver; fails with [`RegistryError::Full`]
    /// only when a capacity bound is set and no resident model is
    /// evictable.
    pub fn load(
        &self,
        id: impl Into<String>,
        net: &BayesianNetwork,
        config: &ModelConfig,
    ) -> Result<Arc<Solver>, RegistryError> {
        let mut builder = Solver::builder(net)
            .engine(config.engine.unwrap_or(EngineKind::Hybrid))
            .pool(self.pool_handle())
            .jtree_options(config.jtree);
        if let Some(cache) = config.cache {
            builder = builder.cache(cache);
        }
        let solver = Arc::new(builder.build());
        self.insert(id, Arc::clone(&solver))?;
        Ok(solver)
    }

    /// Registers a pre-built solver under `id`, replacing (and
    /// returning) any previous model with that id. For pool sharing to
    /// mean anything the solver should have been compiled on
    /// [`Registry::pool_handle`] — pre-built solvers with private
    /// pools are accepted (the single-model serve shim relies on it)
    /// but bring their own worker team along.
    pub fn insert(
        &self,
        id: impl Into<String>,
        solver: Arc<Solver>,
    ) -> Result<Option<Arc<Solver>>, RegistryError> {
        let id = id.into();
        let mut models = self.models.write().unwrap_or_else(PoisonError::into_inner);
        if let Some(previous) = models.remove(&id) {
            // Hot reload: same id, no capacity pressure added.
            models.insert(id, self.entry(solver));
            return Ok(Some(previous.solver));
        }
        if let Some(capacity) = self.capacity {
            while models.len() >= capacity {
                if !evict_lru_idle(&mut models) {
                    return Err(RegistryError::Full { capacity });
                }
            }
        }
        models.insert(id, self.entry(solver));
        Ok(None)
    }

    /// Looks up a model, bumping its LRU stamp. The returned `Arc`
    /// keeps the model alive (and un-evictable) for as long as the
    /// caller holds it — removal never interrupts work in flight.
    pub fn get(&self, id: &str) -> Option<Arc<Solver>> {
        let models = self.models.read().unwrap_or_else(PoisonError::into_inner);
        let entry = models.get(id)?;
        entry.last_used.store(
            self.ticks.fetch_add(1, Ordering::Relaxed) + 1,
            Ordering::Relaxed,
        );
        Some(Arc::clone(&entry.solver))
    }

    /// Unregisters a model (hot unload), returning its solver. Only
    /// the registry's reference is dropped: in-flight queries holding
    /// the `Arc` complete normally; subsequent routed submissions for
    /// the id get a typed unknown-model error.
    pub fn remove(&self, id: &str) -> Option<Arc<Solver>> {
        self.models
            .write()
            .unwrap_or_else(PoisonError::into_inner)
            .remove(id)
            .map(|entry| entry.solver)
    }

    /// A snapshot of one resident model's query-cache counters:
    /// `None` when `id` is absent **or** resident without a cache
    /// (tell the two apart with [`Registry::contains`]). Unlike
    /// [`Registry::get`] this is an observation, not a use — it does
    /// not bump the model's LRU stamp, so monitoring a registry never
    /// protects an idle model from eviction.
    pub fn cache_stats_for(&self, id: &str) -> Option<fastbn_inference::CacheStats> {
        self.models
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .get(id)?
            .solver
            .cache_stats()
    }

    /// Writes every resident model's point-in-time stats into
    /// `metrics` as gauges under `{scope}.model.<id>.*` (see
    /// [`Solver::export_metrics`]), plus the shared pool's occupancy
    /// gauges under `{scope}.pool.*` when the pool has been created.
    /// Like [`Registry::cache_stats_for`] this bumps no LRU stamps.
    pub fn export_metrics(&self, metrics: &fastbn_telemetry::MetricsRegistry, scope: &str) {
        let models = self.models.read().unwrap_or_else(PoisonError::into_inner);
        for (id, entry) in models.iter() {
            entry
                .solver
                .export_metrics(metrics, &format!("{scope}.model.{id}"));
        }
        drop(models);
        if let Some(pool) = self.pool.get() {
            pool.export_metrics(metrics, &format!("{scope}.pool"));
        }
    }

    /// Whether `id` is currently resident.
    pub fn contains(&self, id: &str) -> bool {
        self.models
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .contains_key(id)
    }

    /// Number of resident models.
    pub fn len(&self) -> usize {
        self.models
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// True when no model is resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The resident model ids, sorted.
    pub fn model_ids(&self) -> Vec<String> {
        let mut ids: Vec<String> = self
            .models
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .keys()
            .cloned()
            .collect();
        ids.sort_unstable();
        ids
    }

    /// The configured capacity bound, if any.
    pub fn capacity(&self) -> Option<usize> {
        self.capacity
    }

    fn entry(&self, solver: Arc<Solver>) -> Entry {
        Entry {
            solver,
            last_used: AtomicU64::new(self.ticks.fetch_add(1, Ordering::Relaxed) + 1),
        }
    }
}

impl Default for Registry {
    fn default() -> Self {
        Registry::new()
    }
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry")
            .field("models", &self.model_ids())
            .field("capacity", &self.capacity)
            .field("pool_threads", &self.pool.get().map(|pool| pool.threads()))
            .finish()
    }
}

/// Evicts the least-recently-used **idle** entry (one whose solver has
/// no references outside the map — `Arc::strong_count == 1` under the
/// exclusive map lock, so no new reference can appear mid-eviction).
/// Returns false when every resident model is busy.
fn evict_lru_idle(models: &mut HashMap<String, Entry>) -> bool {
    let victim = models
        .iter()
        .filter(|(_, entry)| Arc::strong_count(&entry.solver) == 1)
        .min_by_key(|(_, entry)| entry.last_used.load(Ordering::Relaxed))
        .map(|(id, _)| id.clone());
    match victim {
        Some(id) => {
            models.remove(&id);
            true
        }
        None => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fastbn_bayesnet::datasets;

    fn assert_send_sync<T: Send + Sync>() {}

    #[test]
    fn registry_is_send_and_sync() {
        assert_send_sync::<Registry>();
    }

    #[test]
    fn load_get_remove_round_trip() {
        let registry = Registry::builder().threads(2).build();
        assert!(registry.is_empty());
        registry
            .load("asia", &datasets::asia(), &ModelConfig::new())
            .unwrap();
        registry
            .load("sprinkler", &datasets::sprinkler(), &ModelConfig::new())
            .unwrap();
        assert_eq!(registry.len(), 2);
        assert_eq!(registry.model_ids(), vec!["asia", "sprinkler"]);
        assert!(registry.contains("asia"));
        let asia = registry.get("asia").expect("resident");
        assert_eq!(asia.threads(), 2);
        assert!(registry.remove("asia").is_some());
        assert!(registry.get("asia").is_none());
        assert!(registry.remove("asia").is_none(), "idempotent");
        // The handle we still hold keeps answering after the unload.
        assert!(asia.query(&fastbn_inference::Query::new()).is_ok());
    }

    #[test]
    fn loaded_models_share_one_pool() {
        let registry = Registry::builder().threads(3).build();
        let a = registry
            .load("a", &datasets::asia(), &ModelConfig::new())
            .unwrap();
        let b = registry
            .load("b", &datasets::cancer(), &ModelConfig::new())
            .unwrap();
        let pa = a.pool_handle().expect("hybrid engine has a pool");
        let pb = b.pool_handle().expect("hybrid engine has a pool");
        assert!(Arc::ptr_eq(&pa, &pb), "one worker team for both models");
        assert!(Arc::ptr_eq(&pa, &registry.pool_handle()));
        assert_eq!(pa.threads(), 3);
    }

    #[test]
    fn sequential_models_never_create_the_pool() {
        let registry = Registry::builder().threads(2).build();
        let solver = Arc::new(Solver::new(&datasets::sprinkler()));
        registry.insert("seq", solver).unwrap();
        assert!(
            registry.pool.get().is_none(),
            "pre-built inserts spawn no worker team"
        );
    }

    #[test]
    fn reload_replaces_and_returns_previous() {
        let registry = Registry::builder().threads(1).capacity(1).build();
        let first = registry
            .load("m", &datasets::asia(), &ModelConfig::new())
            .unwrap();
        // At capacity with "m" busy (we hold `first`), yet reloading the
        // *same id* must succeed — it replaces, not grows.
        let replaced = registry
            .insert("m", Arc::new(Solver::new(&datasets::sprinkler())))
            .unwrap()
            .expect("previous model handed back");
        assert!(Arc::ptr_eq(&first, &replaced));
        assert_eq!(registry.len(), 1);
    }

    #[test]
    fn capacity_evicts_lru_idle_and_refuses_when_all_busy() {
        let registry = Registry::builder().threads(1).capacity(2).build();
        registry
            .load("old", &datasets::asia(), &ModelConfig::new())
            .unwrap();
        registry
            .load("newer", &datasets::sprinkler(), &ModelConfig::new())
            .unwrap();
        // Touch "old" so "newer" becomes the LRU entry.
        let _ = registry.get("old");
        registry
            .load("third", &datasets::cancer(), &ModelConfig::new())
            .unwrap();
        assert_eq!(registry.model_ids(), vec!["old", "third"]);
        assert!(!registry.contains("newer"), "LRU idle model evicted");

        // Hold both residents: nothing is idle, the insert must refuse
        // rather than evict work out from under a caller.
        let _old = registry.get("old").unwrap();
        let _third = registry.get("third").unwrap();
        let err = registry
            .insert("fourth", Arc::new(Solver::new(&datasets::student())))
            .unwrap_err();
        assert_eq!(err, RegistryError::Full { capacity: 2 });
        assert!(err.to_string().contains("busy"));
        // Release one handle: the insert now finds an idle victim.
        drop(_old);
        registry
            .insert("fourth", Arc::new(Solver::new(&datasets::student())))
            .unwrap();
        assert!(registry.contains("fourth"));
        assert!(!registry.contains("old"));
    }

    #[test]
    fn cache_stats_for_reports_without_bumping_lru() {
        let registry = Registry::builder().threads(1).capacity(2).build();
        let cached = registry
            .load(
                "cached",
                &datasets::asia(),
                &ModelConfig::new().cache(CacheConfig::default()),
            )
            .unwrap();
        registry
            .load("plain", &datasets::sprinkler(), &ModelConfig::new())
            .unwrap();
        drop(cached);

        // A hit/miss pair shows up in the aggregated stats.
        let solver = registry.get("cached").unwrap();
        let query = fastbn_inference::Query::new();
        solver.query(&query).unwrap();
        solver.query(&query).unwrap();
        drop(solver);
        let stats = registry.cache_stats_for("cached").unwrap();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        assert!(registry.cache_stats_for("plain").is_none(), "no cache");
        assert!(registry.cache_stats_for("ghost").is_none(), "not resident");

        // Observing "plain" repeatedly must NOT refresh its LRU stamp:
        // it stays the eviction victim ("cached" was touched by `get`).
        for _ in 0..8 {
            let _ = registry.cache_stats_for("plain");
        }
        registry
            .load("third", &datasets::cancer(), &ModelConfig::new())
            .unwrap();
        assert!(!registry.contains("plain"), "observation is not use");
        assert!(registry.contains("cached"));

        // The exporter mirrors the same numbers into gauges.
        let metrics = fastbn_telemetry::MetricsRegistry::new();
        registry.export_metrics(&metrics, "registry");
        let snap = metrics.snapshot();
        assert_eq!(snap.gauge("registry.model.cached.cache.hits"), Some(1));
        assert_eq!(snap.gauge("registry.model.cached.cache.misses"), Some(1));
        assert_eq!(snap.gauge("registry.model.cached.threads"), Some(1));
        assert!(
            snap.gauge("registry.model.third.cache.hits").is_none(),
            "cacheless models export no cache gauges"
        );
        assert_eq!(snap.gauge("registry.pool.threads"), Some(1));
    }

    #[test]
    fn per_model_cache_configs_are_independent() {
        let registry = Registry::builder().threads(1).build();
        let cached = registry
            .load(
                "cached",
                &datasets::asia(),
                &ModelConfig::new().cache(CacheConfig::default()),
            )
            .unwrap();
        let plain = registry
            .load("plain", &datasets::asia(), &ModelConfig::new())
            .unwrap();
        assert!(cached.cache_stats().is_some());
        assert!(plain.cache_stats().is_none());
    }
}
