//! # fastbn-registry
//!
//! The **multi-model layer** of the fastbn stack: many compiled
//! Bayesian networks served from one process, on **one shared worker
//! pool**, behind one routed front end.
//!
//! The paper's engines parallelize one junction tree at a time; real
//! deployments serve *many* networks at once (per-tenant models,
//! per-region variants, A/B candidates). Giving every parallel engine
//! its own [`ThreadPool`](fastbn_parallel::ThreadPool) would put
//! `N × t` worker threads on `t` cores; this crate closes that gap
//! with two pieces:
//!
//! * a [`Registry`] — a named set of compiled models
//!   (`insert` / `remove` / `get`) that compiles every
//!   [`Registry::load`]ed network onto one shared pool
//!   ([`ThreadPool::shared`](fastbn_parallel::ThreadPool::shared) +
//!   [`SolverBuilder::pool`](fastbn_inference::SolverBuilder::pool)),
//!   supports **hot load/unload while traffic is in flight** (models
//!   are handed out as `Arc<Solver>`, so removal drops only the
//!   registry's reference), carries **per-model cache configs**, and
//!   enforces an optional **capacity bound with LRU eviction of idle
//!   models**;
//! * a [`RoutedServer`] — the micro-batching serving front end
//!   generalized to carry a **model id per request**: submissions
//!   resolve their model at admission (unknown ids come back as a
//!   typed [`SubmitErrorKind::UnknownModel`] with the query handed
//!   back), windows **group by model** before dispatching to the batch
//!   path, and [`ServerStats`] gains a per-model breakdown
//!   ([`RoutedServer::model_stats`]) alongside the global drain
//!   invariant `submitted == completed + cancelled`.
//!
//! Results are bit-identical to a standalone single-model
//! `Solver` of the same engine and width — routing, pool
//! sharing, and mixed windows are invisible to clients
//! (`tests/registry.rs` asserts this across engines × thread counts ×
//! concurrent submitters).
//!
//! ```
//! use std::sync::Arc;
//! use fastbn_bayesnet::datasets;
//! use fastbn_inference::Query;
//! use fastbn_registry::{ModelConfig, Registry, RoutedServer};
//!
//! // One pool, three models.
//! let registry = Arc::new(Registry::builder().threads(2).build());
//! for (id, net) in [
//!     ("asia", datasets::asia()),
//!     ("sprinkler", datasets::sprinkler()),
//!     ("cancer", datasets::cancer()),
//! ] {
//!     registry.load(id, &net, &ModelConfig::new()).unwrap();
//! }
//!
//! // Mixed traffic through one front end.
//! let server = RoutedServer::builder(Arc::clone(&registry)).workers(2).build();
//! let a = server.submit("asia", Query::new()).unwrap();
//! let b = server.submit("sprinkler", Query::new()).unwrap();
//! assert!(a.wait().is_ok() && b.wait().is_ok());
//!
//! // Unknown models fail with a typed error, query handed back.
//! let err = server.submit("nope", Query::new()).unwrap_err();
//! assert_eq!(err.kind(), fastbn_registry::SubmitErrorKind::UnknownModel);
//! let _query_again = err.into_query();
//! ```
//!
//! The single-model [`Server`](https://docs.rs/fastbn-serve) in
//! `fastbn-serve` is a thin wrapper over a one-entry registry — same
//! machinery, fixed routing. Where this layer sits in the stack is
//! mapped out in `docs/ARCHITECTURE.md` at the repository root, and
//! `examples/multi_model.rs` is a runnable quickstart.

// No unsafe code: raw-pointer and atomics tricks live in the audited
// modules of fastbn-potential/parallel/inference (see FB-L4 in
// crates/analyze); everything here must stay checkable by construction.
#![forbid(unsafe_code)]

mod oneshot;
mod registry;
mod routed;
mod stats;

pub use registry::{ModelConfig, Registry, RegistryBuilder, RegistryError};
pub use routed::{
    Pending, RoutedServer, RoutedServerBuilder, ServeError, SubmitError, SubmitErrorKind,
};
pub use stats::{ModelStats, ServerStats};

// Re-export the telemetry vocabulary (the routed server's metrics and
// tracing surface) and the request/response vocabulary so routing
// callers can depend on this crate alone.
pub use fastbn_telemetry::{
    Counter, Histogram, HistogramSnapshot, Introspection, IntrospectionBuilder, MetricsRegistry,
    MetricsSnapshot, SlowEntry, TraceConfig, TraceView, Tracer,
};

pub use fastbn_inference::{
    CacheConfig, CacheStats, EngineKind, InferenceError, Query, QueryBatch, QueryKey, QueryResult,
    Solver, SolverBuilder,
};
