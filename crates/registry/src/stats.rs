//! Traffic counters for the serving front ends: the global
//! [`ServerStats`] snapshot (shared with `fastbn-serve`) and the
//! per-model [`ModelStats`] breakdown the routed server adds on top.

use std::sync::Arc;

use fastbn_telemetry::{Counter, MetricsRegistry};

/// Monotonic counters describing a server's traffic so far (a snapshot;
/// concurrently updated by submitters and workers).
///
/// # Accounting invariant
///
/// Every request is counted **exactly once** at each stage it reaches,
/// so at any instant
///
/// ```text
/// submitted == completed + cancelled + queued_or_in_flight
/// ```
///
/// where `queued_or_in_flight` is the (unobservable) number of accepted
/// requests not yet resolved; after a shutdown (the queue fully
/// drained, workers joined) it is zero and `submitted == completed +
/// cancelled` exactly — **provided `worker_panics` is 0** (a panicking
/// dispatch abandons its group's requests mid-unwind; they surface to
/// clients as `Abandoned` and are counted nowhere else). `rejected`
/// requests were never accepted, so they sit outside the identity, and
/// `completed + cancelled ≤ dequeued ≤ submitted` holds throughout. In
/// particular a request whose handle is dropped *between* dequeue and
/// delivery is counted once as `cancelled` — never double-counted
/// across `dequeued` / `cancelled` / `completed`. Locked in by the
/// stress tests in `tests/serve.rs` and `tests/registry.rs`.
///
/// On a routed (multi-model) server the same identity additionally
/// holds **per model**: see
/// [`RoutedServer::model_stats`](crate::RoutedServer::model_stats).
/// `dequeued`, `rejected` and `worker_panics` are tracked globally
/// only; the per-model stages are [`ModelStats`].
///
/// A request answered by the in-window dedup still counts as
/// `completed` — `dedups` tells you how many of those completions
/// shared another request's computation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServerStats {
    /// Requests accepted onto the queue.
    pub submitted: u64,
    /// `try_submit` rejections due to a full queue.
    pub rejected: u64,
    /// Requests popped off the queue by a worker.
    pub dequeued: u64,
    /// Results delivered to a live `Pending` handle.
    pub completed: u64,
    /// Requests whose handle was dropped — skipped before dispatch or
    /// discarded after.
    pub cancelled: u64,
    /// Micro-batches dispatched (each covering ≥ 1 request; on a routed
    /// server a mixed window dispatches one batch **per model** in it).
    pub batches: u64,
    /// Requests answered by cloning an identical in-flight request's
    /// result instead of computing their own (in-window dedup; the
    /// clones are bit-identical by the `QueryKey` contract).
    pub dedups: u64,
    /// Dispatches that panicked (an engine bug, not bad input — bad
    /// input yields a per-slot `Err`). The group's requests surface as
    /// `Abandoned`; the worker survives and keeps serving.
    pub worker_panics: u64,
}

/// One model's share of a routed server's traffic — the per-model
/// breakdown of [`ServerStats`].
///
/// After a drain the per-model identity `submitted == completed +
/// cancelled` holds for every row (given zero `worker_panics`), and
/// the rows sum to the global counters: routing never loses or
/// double-counts a request.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ModelStats {
    /// The model id requests were routed by.
    pub model: String,
    /// Requests for this model accepted onto the queue.
    pub submitted: u64,
    /// Results delivered to live handles.
    pub completed: u64,
    /// Requests whose handle was dropped before delivery.
    pub cancelled: u64,
    /// Completions that shared another in-flight request's computation.
    pub dedups: u64,
    /// Micro-batches dispatched for this model.
    pub batches: u64,
}

/// The counters behind [`ServerStats`] — handles into the server's
/// [`MetricsRegistry`], so the `ServerStats` snapshot and the exported
/// metrics (`serve.submitted`, `serve.completed`, …) are **the same
/// cells**, not two bookkeeping systems that could drift.
///
/// The stage counters (`submitted`, `dequeued`, `completed`,
/// `cancelled`) use the counter's `SeqCst` methods so the accounting
/// invariant is observable from a *concurrent* snapshot, not just
/// after shutdown: `submitted` is incremented **before** the request
/// enters the queue (undone on a failed send), each later stage is
/// incremented after the earlier one, and [`Counters::snapshot`] reads
/// the stages in reverse order — so a snapshot can never catch a
/// completion whose submission it missed.
pub(crate) struct Counters {
    pub(crate) submitted: Arc<Counter>,
    pub(crate) rejected: Arc<Counter>,
    pub(crate) dequeued: Arc<Counter>,
    pub(crate) completed: Arc<Counter>,
    pub(crate) cancelled: Arc<Counter>,
    pub(crate) batches: Arc<Counter>,
    pub(crate) dedups: Arc<Counter>,
    pub(crate) worker_panics: Arc<Counter>,
}

impl Counters {
    /// Resolves the global traffic counters (`serve.*`) in `metrics`.
    pub(crate) fn in_registry(metrics: &MetricsRegistry) -> Counters {
        Counters {
            submitted: metrics.counter("serve.submitted"),
            rejected: metrics.counter("serve.rejected"),
            dequeued: metrics.counter("serve.dequeued"),
            completed: metrics.counter("serve.completed"),
            cancelled: metrics.counter("serve.cancelled"),
            batches: metrics.counter("serve.batches"),
            dedups: metrics.counter("serve.dedups"),
            worker_panics: metrics.counter("serve.worker_panics"),
        }
    }

    pub(crate) fn snapshot(&self) -> ServerStats {
        // Read latest-stage counters first: `completed + cancelled ≤
        // dequeued ≤ submitted` must hold in the snapshot even while
        // requests race through the pipeline (each read can only miss
        // increments that post-date the earlier reads).
        let completed = self.completed.get_seq();
        let cancelled = self.cancelled.get_seq();
        let dequeued = self.dequeued.get_seq();
        let submitted = self.submitted.get_seq();
        ServerStats {
            submitted,
            rejected: self.rejected.get(),
            dequeued,
            completed,
            cancelled,
            batches: self.batches.get(),
            dedups: self.dedups.get(),
            worker_panics: self.worker_panics.get(),
        }
    }
}

/// One model's counters (`serve.model.<id>.*`); same staging
/// discipline as [`Counters`] (pre-counted `submitted`, reverse-order
/// snapshot).
pub(crate) struct ModelCounters {
    pub(crate) submitted: Arc<Counter>,
    pub(crate) completed: Arc<Counter>,
    pub(crate) cancelled: Arc<Counter>,
    pub(crate) dedups: Arc<Counter>,
    pub(crate) batches: Arc<Counter>,
}

impl ModelCounters {
    /// Resolves the per-model counters for `model` in `metrics`.
    pub(crate) fn in_registry(metrics: &MetricsRegistry, model: &str) -> ModelCounters {
        let name = |stage: &str| format!("serve.model.{model}.{stage}");
        ModelCounters {
            submitted: metrics.counter(&name("submitted")),
            completed: metrics.counter(&name("completed")),
            cancelled: metrics.counter(&name("cancelled")),
            dedups: metrics.counter(&name("dedups")),
            batches: metrics.counter(&name("batches")),
        }
    }

    pub(crate) fn snapshot(&self, model: &str) -> ModelStats {
        let completed = self.completed.get_seq();
        let cancelled = self.cancelled.get_seq();
        let submitted = self.submitted.get_seq();
        ModelStats {
            model: model.to_string(),
            submitted,
            completed,
            cancelled,
            dedups: self.dedups.get(),
            batches: self.batches.get(),
        }
    }
}
