//! Traffic counters for the serving front ends: the global
//! [`ServerStats`] snapshot (shared with `fastbn-serve`) and the
//! per-model [`ModelStats`] breakdown the routed server adds on top.

use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonic counters describing a server's traffic so far (a snapshot;
/// concurrently updated by submitters and workers).
///
/// # Accounting invariant
///
/// Every request is counted **exactly once** at each stage it reaches,
/// so at any instant
///
/// ```text
/// submitted == completed + cancelled + queued_or_in_flight
/// ```
///
/// where `queued_or_in_flight` is the (unobservable) number of accepted
/// requests not yet resolved; after a shutdown (the queue fully
/// drained, workers joined) it is zero and `submitted == completed +
/// cancelled` exactly — **provided `worker_panics` is 0** (a panicking
/// dispatch abandons its group's requests mid-unwind; they surface to
/// clients as `Abandoned` and are counted nowhere else). `rejected`
/// requests were never accepted, so they sit outside the identity, and
/// `completed + cancelled ≤ dequeued ≤ submitted` holds throughout. In
/// particular a request whose handle is dropped *between* dequeue and
/// delivery is counted once as `cancelled` — never double-counted
/// across `dequeued` / `cancelled` / `completed`. Locked in by the
/// stress tests in `tests/serve.rs` and `tests/registry.rs`.
///
/// On a routed (multi-model) server the same identity additionally
/// holds **per model**: see
/// [`RoutedServer::model_stats`](crate::RoutedServer::model_stats).
/// `dequeued`, `rejected` and `worker_panics` are tracked globally
/// only; the per-model stages are [`ModelStats`].
///
/// A request answered by the in-window dedup still counts as
/// `completed` — `dedups` tells you how many of those completions
/// shared another request's computation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServerStats {
    /// Requests accepted onto the queue.
    pub submitted: u64,
    /// `try_submit` rejections due to a full queue.
    pub rejected: u64,
    /// Requests popped off the queue by a worker.
    pub dequeued: u64,
    /// Results delivered to a live `Pending` handle.
    pub completed: u64,
    /// Requests whose handle was dropped — skipped before dispatch or
    /// discarded after.
    pub cancelled: u64,
    /// Micro-batches dispatched (each covering ≥ 1 request; on a routed
    /// server a mixed window dispatches one batch **per model** in it).
    pub batches: u64,
    /// Requests answered by cloning an identical in-flight request's
    /// result instead of computing their own (in-window dedup; the
    /// clones are bit-identical by the `QueryKey` contract).
    pub dedups: u64,
    /// Dispatches that panicked (an engine bug, not bad input — bad
    /// input yields a per-slot `Err`). The group's requests surface as
    /// `Abandoned`; the worker survives and keeps serving.
    pub worker_panics: u64,
}

/// One model's share of a routed server's traffic — the per-model
/// breakdown of [`ServerStats`].
///
/// After a drain the per-model identity `submitted == completed +
/// cancelled` holds for every row (given zero `worker_panics`), and
/// the rows sum to the global counters: routing never loses or
/// double-counts a request.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ModelStats {
    /// The model id requests were routed by.
    pub model: String,
    /// Requests for this model accepted onto the queue.
    pub submitted: u64,
    /// Results delivered to live handles.
    pub completed: u64,
    /// Requests whose handle was dropped before delivery.
    pub cancelled: u64,
    /// Completions that shared another in-flight request's computation.
    pub dedups: u64,
    /// Micro-batches dispatched for this model.
    pub batches: u64,
}

/// The atomic counters behind [`ServerStats`].
///
/// The stage counters (`submitted`, `dequeued`, `completed`,
/// `cancelled`) use `SeqCst` so the accounting invariant is observable
/// from a *concurrent* snapshot, not just after shutdown: `submitted`
/// is incremented **before** the request enters the queue (undone on a
/// failed send), each later stage is incremented after the earlier
/// one, and [`Counters::snapshot`] reads the stages in reverse order —
/// so a snapshot can never catch a completion whose submission it
/// missed.
#[derive(Default)]
pub(crate) struct Counters {
    pub(crate) submitted: AtomicU64,
    pub(crate) rejected: AtomicU64,
    pub(crate) dequeued: AtomicU64,
    pub(crate) completed: AtomicU64,
    pub(crate) cancelled: AtomicU64,
    pub(crate) batches: AtomicU64,
    pub(crate) dedups: AtomicU64,
    pub(crate) worker_panics: AtomicU64,
}

impl Counters {
    pub(crate) fn snapshot(&self) -> ServerStats {
        // Read latest-stage counters first: `completed + cancelled ≤
        // dequeued ≤ submitted` must hold in the snapshot even while
        // requests race through the pipeline (each read can only miss
        // increments that post-date the earlier reads).
        let completed = self.completed.load(Ordering::SeqCst);
        let cancelled = self.cancelled.load(Ordering::SeqCst);
        let dequeued = self.dequeued.load(Ordering::SeqCst);
        let submitted = self.submitted.load(Ordering::SeqCst);
        ServerStats {
            submitted,
            rejected: self.rejected.load(Ordering::Relaxed),
            dequeued,
            completed,
            cancelled,
            batches: self.batches.load(Ordering::Relaxed),
            dedups: self.dedups.load(Ordering::Relaxed),
            worker_panics: self.worker_panics.load(Ordering::Relaxed),
        }
    }
}

/// One model's atomic counters; same staging discipline as
/// [`Counters`] (pre-counted `submitted`, reverse-order snapshot).
#[derive(Default)]
pub(crate) struct ModelCounters {
    pub(crate) submitted: AtomicU64,
    pub(crate) completed: AtomicU64,
    pub(crate) cancelled: AtomicU64,
    pub(crate) dedups: AtomicU64,
    pub(crate) batches: AtomicU64,
}

impl ModelCounters {
    pub(crate) fn snapshot(&self, model: &str) -> ModelStats {
        let completed = self.completed.load(Ordering::SeqCst);
        let cancelled = self.cancelled.load(Ordering::SeqCst);
        let submitted = self.submitted.load(Ordering::SeqCst);
        ModelStats {
            model: model.to_string(),
            submitted,
            completed,
            cancelled,
            dedups: self.dedups.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
        }
    }
}
