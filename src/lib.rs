//! # fastbn
//!
//! A Rust reproduction of **"Fast Parallel Exact Inference on Bayesian
//! Networks"** (Jiang, Wen, Mansoor, Mian — PPoPP 2023): junction-tree
//! exact inference with hybrid inter-/intra-clique parallelism
//! (**Fast-BNI**), plus the full substrate it depends on — Bayesian
//! networks with BIF I/O, potential tables with parallel index-mapped
//! operations, junction-tree construction with root selection and BFS
//! layering, an OpenMP-analogue thread pool, and the paper's three
//! parallel baselines.
//!
//! This facade crate re-exports the workspace members; depend on it for
//! everything, or on individual `fastbn-*` crates for a subset.
//!
//! ## Quickstart
//!
//! ```
//! use fastbn::bayesnet::{datasets, Evidence};
//! use fastbn::inference::{HybridJt, InferenceEngine, Prepared};
//! use std::sync::Arc;
//!
//! // 1. A Bayesian network (classic Asia; or load a .bif, or generate).
//! let net = datasets::asia();
//! // 2. Build the junction tree and initial potentials once.
//! let prepared = Arc::new(Prepared::new(&net, &Default::default()));
//! // 3. Fast-BNI-par engine with 2 threads.
//! let mut engine = HybridJt::new(prepared, 2);
//! // 4. Query: P(everything | XRay = yes).
//! let xray = net.var_id("XRay").unwrap();
//! let posteriors = engine.query(&Evidence::from_pairs([(xray, 0)])).unwrap();
//! let tub = net.var_id("Tuberculosis").unwrap();
//! assert!(posteriors.marginal(tub)[0] > 0.05); // x-ray raises P(tub)
//! ```

/// Bayesian-network substrate (variables, CPTs, DAG, BIF, generators).
pub use fastbn_bayesnet as bayesnet;
/// Inference engines and oracles (the paper's contribution).
pub use fastbn_inference as inference;
/// Junction-tree construction.
pub use fastbn_jtree as jtree;
/// OpenMP-analogue thread pool.
pub use fastbn_parallel as parallel;
/// Potential tables and the three dominant operations.
pub use fastbn_potential as potential;

pub use fastbn_bayesnet::{BayesianNetwork, Evidence, NetworkBuilder, VarId, Variable};
pub use fastbn_inference::{
    build_engine, DirectJt, ElementJt, EngineKind, HybridJt, InferenceEngine, InferenceError,
    Posteriors, Prepared, PrimitiveJt, ReferenceJt, SeqJt,
};
pub use fastbn_jtree::JtreeOptions;
pub use fastbn_parallel::{Schedule, ThreadPool};
