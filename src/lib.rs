//! # fastbn
//!
//! A Rust reproduction of **"Fast Parallel Exact Inference on Bayesian
//! Networks"** (Jiang, Wen, Mansoor, Mian — PPoPP 2023): junction-tree
//! exact inference with hybrid inter-/intra-clique parallelism
//! (**Fast-BNI**), plus the full substrate it depends on — Bayesian
//! networks with BIF I/O, potential tables with parallel index-mapped
//! operations, junction-tree construction with root selection and BFS
//! layering, an OpenMP-analogue thread pool, and the paper's three
//! parallel baselines.
//!
//! Inference is served through a concurrent three-layer API: a
//! [`Solver`] compiles a network once into an immutable `Send + Sync`
//! model; any number of threads open [`Session`]s against it; each
//! session runs [`Query`]s (hard evidence, virtual evidence, targeted
//! marginals, MPE) with pooled scratch and zero steady-state allocation.
//!
//! This facade crate re-exports the workspace members; depend on it for
//! everything, or on individual `fastbn-*` crates for a subset.
//!
//! ## Quickstart
//!
//! ```
//! use fastbn::bayesnet::datasets;
//! use fastbn::{EngineKind, Query, Solver};
//!
//! // 1. A Bayesian network (classic Asia; or load a .bif, or generate).
//! let net = datasets::asia();
//! // 2. Compile once: junction tree, initial potentials, engine plans.
//! //    The solver is Send + Sync — share it across threads freely.
//! let solver = Solver::builder(&net)
//!     .engine(EngineKind::Hybrid) // Fast-BNI-par
//!     .threads(2)                 // workers inside each query
//!     .build();
//! // 3. Open a per-caller session (cheap; scratch comes from a pool).
//! let mut session = solver.session();
//! // 4. Query: P(Tuberculosis | XRay = yes), computing only that marginal.
//! let xray = net.var_id("XRay").unwrap();
//! let tub = net.var_id("Tuberculosis").unwrap();
//! let result = session
//!     .run(&Query::new().observe(xray, 0).targets([tub]))
//!     .unwrap();
//! let posteriors = result.posteriors().unwrap();
//! assert!(posteriors.marginal(tub)[0] > 0.05); // x-ray raises P(tub)
//!
//! // The same session also answers MPE queries (max-product):
//! let mpe = session.run(&Query::new().observe(xray, 0).mpe()).unwrap();
//! assert_eq!(mpe.mpe().unwrap().assignment[xray.index()], 0);
//! ```
//!
//! ## Batched serving
//!
//! Independent requests group into a [`QueryBatch`] and execute as one
//! unit: results come back in input order, a failing request (impossible
//! evidence, malformed likelihood) occupies only its own `Err` slot, and
//! batches at least as wide as the engine's pool are spread *across* the
//! workers — one query per worker with pooled scratch — instead of
//! paying reset/evidence-entry/extraction setup serially per request:
//!
//! ```
//! use fastbn::bayesnet::datasets;
//! use fastbn::{EngineKind, Query, QueryBatch, Solver};
//!
//! let net = datasets::asia();
//! let solver = Solver::builder(&net).engine(EngineKind::Hybrid).threads(4).build();
//! let dysp = net.var_id("Dyspnea").unwrap();
//! let xray = net.var_id("XRay").unwrap();
//! let batch = QueryBatch::new()
//!     .with(Query::new().observe(dysp, 0))
//!     .with(Query::new().observe(dysp, 0).mpe())
//!     .with(Query::new().likelihood(xray, vec![0.8, 0.2]))
//!     .with(Query::new().likelihood(xray, vec![0.0, 0.0])); // malformed
//! let results = solver.query_batch(&batch);
//! assert!(results[..3].iter().all(|r| r.is_ok()));
//! assert!(results[3].is_err(), "bad slot fails alone");
//! ```
//!
//! ## Live serving
//!
//! Under live traffic — single requests arriving from many clients —
//! don't hand-roll batches or per-query loops: put a [`Server`] in
//! front. It owns worker threads over the shared solver, coalesces
//! queued requests into deadline-bounded micro-batches (feeding the
//! same `run_batch` path), pushes back through a bounded queue, and
//! delivers each request's own result; dropping a pending handle
//! cancels that request:
//!
//! ```
//! use std::sync::Arc;
//! use std::time::Duration;
//! use fastbn::bayesnet::datasets;
//! use fastbn::{EngineKind, Query, Server, Solver};
//!
//! let net = datasets::sprinkler();
//! let solver = Arc::new(Solver::builder(&net).engine(EngineKind::Hybrid).threads(2).build());
//! let server = Server::builder(Arc::clone(&solver))
//!     .workers(2)
//!     .max_batch(4)
//!     .max_delay(Duration::from_micros(200))
//!     .build();
//! let rain = net.var_id("Rain").unwrap();
//! let pending: Vec<_> = (0..8)
//!     .map(|i| server.submit(Query::new().observe(rain, i % 2)).unwrap())
//!     .collect();
//! for p in pending {
//!     assert!(p.wait().unwrap().posteriors().unwrap().prob_evidence > 0.0);
//! }
//! server.shutdown(); // drains accepted work, joins the workers
//! ```
//!
//! For embedding without a server, sharing the solver across scoped
//! threads with one [`Session`] each works too — sessions are cheap and
//! results are bit-identical either way.
//!
//! ## Multi-model serving
//!
//! Serving *several* networks from one process? Don't give each its
//! own worker pool: put them in a [`Registry`] — every model compiles
//! onto **one shared pool** — and route traffic by model id through a
//! [`RoutedServer`], which supports hot load/unload mid-traffic, LRU
//! capacity bounds, and per-model stats (see
//! `examples/multi_model.rs`):
//!
//! ```
//! use std::sync::Arc;
//! use fastbn::bayesnet::datasets;
//! use fastbn::{ModelConfig, Query, Registry, RoutedServer};
//!
//! let registry = Arc::new(Registry::builder().threads(2).build());
//! registry.load("asia", &datasets::asia(), &ModelConfig::new()).unwrap();
//! registry.load("sprinkler", &datasets::sprinkler(), &ModelConfig::new()).unwrap();
//! let server = RoutedServer::builder(Arc::clone(&registry)).workers(2).build();
//! let a = server.submit("asia", Query::new()).unwrap();
//! let b = server.submit("sprinkler", Query::new()).unwrap();
//! assert!(a.wait().is_ok() && b.wait().is_ok());
//! ```
//!
//! The full crate map and the path a query takes through the layers are
//! documented in `docs/ARCHITECTURE.md`.

// No unsafe code: raw-pointer and atomics tricks live in the audited
// modules of fastbn-potential/parallel/inference (see FB-L4 in
// crates/analyze); everything here must stay checkable by construction.
#![forbid(unsafe_code)]

/// Bayesian-network substrate (variables, CPTs, DAG, BIF, generators).
pub use fastbn_bayesnet as bayesnet;
/// Inference engines and oracles (the paper's contribution).
pub use fastbn_inference as inference;
/// Junction-tree construction.
pub use fastbn_jtree as jtree;
/// OpenMP-analogue thread pool.
pub use fastbn_parallel as parallel;
/// Potential tables and the three dominant operations.
pub use fastbn_potential as potential;
/// Multi-model registry and routed serving over one shared pool.
pub use fastbn_registry as registry;
/// Micro-batching serving front end over `Solver`.
pub use fastbn_serve as serve;
/// Metrics/tracing: counters, latency histograms, JSON export.
pub use fastbn_telemetry as telemetry;

pub use fastbn_bayesnet::{BayesianNetwork, Evidence, NetworkBuilder, VarId, Variable};
pub use fastbn_inference::trace::TraceContext;
pub use fastbn_inference::{
    make_engine, CacheConfig, CacheStats, DirectJt, ElementJt, EngineKind, EvidenceDelta, HybridJt,
    InferenceEngine, InferenceError, LikelihoodDefect, LiveSession, MpeResult, OwnedSession,
    Posteriors, Prepared, PrimitiveJt, Query, QueryBatch, QueryCache, QueryKey, QueryMode,
    QueryResult, ReferenceJt, SeqJt, Session, SessionCore, Solver, SolverBuilder, VirtualEvidence,
    WorkState,
};
pub use fastbn_jtree::JtreeOptions;
pub use fastbn_parallel::{Schedule, ThreadPool};
pub use fastbn_registry::{
    ModelConfig, ModelStats, Registry, RegistryBuilder, RegistryError, RoutedServer,
    RoutedServerBuilder,
};
pub use fastbn_serve::{
    Pending, ServeError, Server, ServerBuilder, ServerStats, SubmitError, SubmitErrorKind,
    SINGLE_MODEL_ID,
};
pub use fastbn_telemetry::{
    prometheus_text, Counter, Histogram, HistogramSnapshot, Introspection, IntrospectionBuilder,
    MetricsRegistry, MetricsSnapshot, SlowEntry, SpanRecord, TraceConfig, TraceView, Tracer,
};

#[allow(deprecated)]
pub use fastbn_inference::{build_engine, LegacyEngine};
