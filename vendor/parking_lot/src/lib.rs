//! Offline stand-in for the `parking_lot` crate.
//!
//! Provides `Mutex` and `Condvar` with parking_lot's ergonomics —
//! `lock()` returns a guard directly, `Condvar::wait` takes `&mut
//! MutexGuard` — implemented over `std::sync`. Poisoning is swallowed
//! (parking_lot has none): a panicked holder does not wedge the lock.

// No unsafe code: raw-pointer and atomics tricks live in the audited
// modules of fastbn-potential/parallel/inference (see FB-L4 in
// crates/analyze); everything here must stay checkable by construction.
#![forbid(unsafe_code)]

use std::ops::{Deref, DerefMut};

/// Mutual exclusion lock with parking_lot's non-poisoning `lock()` API.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(
                self.inner
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner),
            ),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

/// RAII guard for [`Mutex`]. The `Option` exists so [`Condvar::wait`]
/// can temporarily take the underlying std guard by value.
#[derive(Debug)]
pub struct MutexGuard<'a, T> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present outside wait")
    }
}

impl<T> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present outside wait")
    }
}

/// Condition variable compatible with [`MutexGuard`].
#[derive(Debug, Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Atomically releases the guard's lock and blocks until notified;
    /// the lock is re-acquired before returning.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.inner.take().expect("guard present before wait");
        let std_guard = self
            .inner
            .wait(std_guard)
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        guard.inner = Some(std_guard);
    }

    /// Wakes one blocked waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all blocked waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn condvar_wait_notify() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(10));
            *p2.0.lock() = true;
            p2.1.notify_all();
        });
        let mut guard = pair.0.lock();
        while !*guard {
            pair.1.wait(&mut guard);
        }
        drop(guard);
        h.join().unwrap();
    }

    #[test]
    fn poisoned_lock_recovers() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        // parking_lot semantics: still lockable.
        *m.lock() = 7;
        assert_eq!(*m.lock(), 7);
    }
}
