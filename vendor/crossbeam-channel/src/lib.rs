//! Offline stand-in for the `crossbeam-channel` crate.
//!
//! Implements the subset the thread pool uses: an **unbounded MPMC
//! channel** with clonable `Sender`/`Receiver`, blocking `recv`,
//! non-blocking `try_recv`, and disconnect detection when all senders
//! (or all receivers) are gone. Built on `Mutex<VecDeque>` + `Condvar`
//! rather than crossbeam's lock-free internals — a constant-factor
//! slowdown under contention, with identical semantics.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};

/// Error returned by [`Sender::send`] when every receiver is gone; the
/// unsent message is handed back.
#[derive(PartialEq, Eq)]
pub struct SendError<T>(pub T);

impl<T> std::fmt::Debug for SendError<T> {
    // Like upstream: no `T: Debug` bound, the payload is elided.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("SendError(..)")
    }
}

/// Error returned by [`Receiver::recv`] when the channel is empty and
/// every sender is gone.
#[derive(Debug, PartialEq, Eq)]
pub struct RecvError;

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, PartialEq, Eq)]
pub enum TryRecvError {
    /// No message available right now.
    Empty,
    /// Channel empty and all senders dropped.
    Disconnected,
}

struct Chan<T> {
    queue: Mutex<VecDeque<T>>,
    ready: Condvar,
    senders: AtomicUsize,
    receivers: AtomicUsize,
}

impl<T> Chan<T> {
    fn lock(&self) -> std::sync::MutexGuard<'_, VecDeque<T>> {
        self.queue.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Sending half; clonable.
pub struct Sender<T> {
    chan: Arc<Chan<T>>,
}

/// Receiving half; clonable (messages go to exactly one receiver).
pub struct Receiver<T> {
    chan: Arc<Chan<T>>,
}

/// Creates an unbounded channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let chan = Arc::new(Chan {
        queue: Mutex::new(VecDeque::new()),
        ready: Condvar::new(),
        senders: AtomicUsize::new(1),
        receivers: AtomicUsize::new(1),
    });
    (Sender { chan: chan.clone() }, Receiver { chan })
}

impl<T> Sender<T> {
    /// Enqueues `value`; fails (returning it) if every receiver is gone.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        if self.chan.receivers.load(Ordering::Acquire) == 0 {
            return Err(SendError(value));
        }
        self.chan.lock().push_back(value);
        self.chan.ready.notify_one();
        Ok(())
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.chan.senders.fetch_add(1, Ordering::AcqRel);
        Sender {
            chan: self.chan.clone(),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        if self.chan.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
            // Last sender: wake parked receivers so they observe the
            // disconnect.
            let _guard = self.chan.lock();
            self.chan.ready.notify_all();
        }
    }
}

impl<T> Receiver<T> {
    /// Pops a message without blocking.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut queue = self.chan.lock();
        match queue.pop_front() {
            Some(v) => Ok(v),
            None if self.chan.senders.load(Ordering::Acquire) == 0 => {
                Err(TryRecvError::Disconnected)
            }
            None => Err(TryRecvError::Empty),
        }
    }

    /// Blocks until a message arrives or every sender is dropped.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut queue = self.chan.lock();
        loop {
            if let Some(v) = queue.pop_front() {
                return Ok(v);
            }
            if self.chan.senders.load(Ordering::Acquire) == 0 {
                return Err(RecvError);
            }
            queue = self
                .chan
                .ready
                .wait(queue)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.chan.receivers.fetch_add(1, Ordering::AcqRel);
        Receiver {
            chan: self.chan.clone(),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        self.chan.receivers.fetch_sub(1, Ordering::AcqRel);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_recv_fifo() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.try_recv(), Ok(2));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn disconnect_when_senders_dropped() {
        let (tx, rx) = unbounded::<i32>();
        tx.send(5).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(5));
        assert_eq!(rx.recv(), Err(RecvError));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn send_fails_without_receivers() {
        let (tx, rx) = unbounded();
        drop(rx);
        assert_eq!(tx.send(9), Err(SendError(9)));
    }

    #[test]
    fn blocking_recv_wakes_on_send() {
        let (tx, rx) = unbounded();
        let h = std::thread::spawn(move || rx.recv().unwrap());
        std::thread::sleep(std::time::Duration::from_millis(10));
        tx.send(77u32).unwrap();
        assert_eq!(h.join().unwrap(), 77);
    }

    #[test]
    fn mpmc_each_message_delivered_once() {
        let (tx, rx) = unbounded::<usize>();
        let mut consumers = Vec::new();
        for _ in 0..4 {
            let rx = rx.clone();
            consumers.push(std::thread::spawn(move || {
                let mut got = Vec::new();
                while let Ok(v) = rx.recv() {
                    got.push(v);
                }
                got
            }));
        }
        drop(rx);
        for i in 0..1000 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let mut all: Vec<usize> = consumers
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..1000).collect::<Vec<_>>());
    }
}
