//! Offline stand-in for the `crossbeam-channel` crate.
//!
//! Implements the subset this workspace uses: **unbounded** and
//! **bounded** MPMC channels with clonable `Sender`/`Receiver`, blocking
//! `send`/`recv`, non-blocking `try_send`/`try_recv`, deadline-aware
//! `recv_timeout`/`recv_deadline`, and disconnect detection when all
//! senders (or all receivers) are gone. Bounded channels give blocking
//! backpressure: `send` parks until space frees up, `try_send` reports
//! `TrySendError::Full`. Built on `Mutex<VecDeque>` + two `Condvar`s
//! rather than crossbeam's lock-free internals — a constant-factor
//! slowdown under contention, with identical semantics.
//!
//! Deviation from upstream: zero-capacity (rendezvous) channels are not
//! implemented; `bounded(0)` panics.

// No unsafe code: raw-pointer and atomics tricks live in the audited
// modules of fastbn-potential/parallel/inference (see FB-L4 in
// crates/analyze); everything here must stay checkable by construction.
#![forbid(unsafe_code)]

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Error returned by [`Sender::send`] when every receiver is gone; the
/// unsent message is handed back.
#[derive(PartialEq, Eq)]
pub struct SendError<T>(pub T);

impl<T> std::fmt::Debug for SendError<T> {
    // Like upstream: no `T: Debug` bound, the payload is elided.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("SendError(..)")
    }
}

/// Error returned by [`Sender::try_send`]; the unsent message is handed
/// back in either case.
#[derive(PartialEq, Eq)]
pub enum TrySendError<T> {
    /// The channel is bounded and at capacity.
    Full(T),
    /// Every receiver is gone.
    Disconnected(T),
}

impl<T> TrySendError<T> {
    /// Recovers the message that could not be sent.
    pub fn into_inner(self) -> T {
        match self {
            TrySendError::Full(v) | TrySendError::Disconnected(v) => v,
        }
    }

    /// True when the failure was a full queue (backpressure), not a
    /// disconnect.
    pub fn is_full(&self) -> bool {
        matches!(self, TrySendError::Full(_))
    }

    /// True when the failure was a disconnect.
    pub fn is_disconnected(&self) -> bool {
        matches!(self, TrySendError::Disconnected(_))
    }
}

impl<T> std::fmt::Debug for TrySendError<T> {
    // Like upstream: no `T: Debug` bound, the payload is elided.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrySendError::Full(_) => f.write_str("Full(..)"),
            TrySendError::Disconnected(_) => f.write_str("Disconnected(..)"),
        }
    }
}

/// Error returned by [`Receiver::recv`] when the channel is empty and
/// every sender is gone.
#[derive(Debug, PartialEq, Eq)]
pub struct RecvError;

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, PartialEq, Eq)]
pub enum TryRecvError {
    /// No message available right now.
    Empty,
    /// Channel empty and all senders dropped.
    Disconnected,
}

/// Error returned by [`Receiver::recv_timeout`] / [`Receiver::recv_deadline`].
#[derive(Debug, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// The deadline passed with no message available.
    Timeout,
    /// Channel empty and all senders dropped.
    Disconnected,
}

struct Chan<T> {
    queue: Mutex<VecDeque<T>>,
    /// Signalled when a message arrives or the last sender leaves.
    ready: Condvar,
    /// Signalled when space frees up or the last receiver leaves
    /// (bounded channels only; never waited on when `cap` is `None`).
    space: Condvar,
    /// `None` = unbounded.
    cap: Option<usize>,
    senders: AtomicUsize,
    receivers: AtomicUsize,
}

impl<T> Chan<T> {
    fn lock(&self) -> std::sync::MutexGuard<'_, VecDeque<T>> {
        self.queue.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn full(&self, queue: &VecDeque<T>) -> bool {
        self.cap.is_some_and(|cap| queue.len() >= cap)
    }
}

/// Sending half; clonable.
pub struct Sender<T> {
    chan: Arc<Chan<T>>,
}

/// Receiving half; clonable (messages go to exactly one receiver).
pub struct Receiver<T> {
    chan: Arc<Chan<T>>,
}

fn channel<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
    let chan = Arc::new(Chan {
        queue: Mutex::new(VecDeque::new()),
        ready: Condvar::new(),
        space: Condvar::new(),
        cap,
        senders: AtomicUsize::new(1),
        receivers: AtomicUsize::new(1),
    });
    (Sender { chan: chan.clone() }, Receiver { chan })
}

/// Creates an unbounded channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    channel(None)
}

/// Creates a bounded channel holding at most `cap` queued messages;
/// `send` blocks (and `try_send` fails with [`TrySendError::Full`]) while
/// the queue is at capacity. Panics if `cap` is 0 — this shim does not
/// implement upstream's rendezvous channels.
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    assert!(
        cap > 0,
        "bounded(0) rendezvous channels are not implemented by this shim"
    );
    channel(Some(cap))
}

impl<T> Sender<T> {
    /// Enqueues `value`, blocking while a bounded channel is at capacity;
    /// fails (returning the value) if every receiver is gone.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut queue = self.chan.lock();
        loop {
            // ORDERING: Acquire pairs with the AcqRel handle-count
            // updates in `Receiver`'s Clone/Drop, so a zero read means
            // the last receiver is truly gone.
            if self.chan.receivers.load(Ordering::Acquire) == 0 {
                return Err(SendError(value));
            }
            if !self.chan.full(&queue) {
                queue.push_back(value);
                drop(queue);
                self.chan.ready.notify_one();
                return Ok(());
            }
            queue = self
                .chan
                .space
                .wait(queue)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Enqueues `value` without blocking; fails with
    /// [`TrySendError::Full`] when a bounded channel is at capacity, or
    /// [`TrySendError::Disconnected`] when every receiver is gone.
    pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
        let mut queue = self.chan.lock();
        // ORDERING: Acquire — same pairing as in `send`.
        if self.chan.receivers.load(Ordering::Acquire) == 0 {
            return Err(TrySendError::Disconnected(value));
        }
        if self.chan.full(&queue) {
            return Err(TrySendError::Full(value));
        }
        queue.push_back(value);
        drop(queue);
        self.chan.ready.notify_one();
        Ok(())
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        // ORDERING: AcqRel — the count is decremented in `Drop` and read
        // by receiver-side disconnect checks; the full RMW ordering keeps
        // the last-handle transition unambiguous across threads.
        self.chan.senders.fetch_add(1, Ordering::AcqRel);
        Sender {
            chan: self.chan.clone(),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        // ORDERING: AcqRel pairs with the Acquire disconnect loads in
        // `recv`/`try_recv`; the decrement that reaches zero must be the
        // one that wakes the parked receivers.
        if self.chan.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
            // Last sender: wake parked receivers so they observe the
            // disconnect.
            let _guard = self.chan.lock();
            self.chan.ready.notify_all();
        }
    }
}

impl<T> Receiver<T> {
    /// Pops `queue`'s front and, on a bounded channel, wakes one sender
    /// blocked on the freed slot.
    fn pop(&self, queue: &mut VecDeque<T>) -> Option<T> {
        let value = queue.pop_front()?;
        if self.chan.cap.is_some() {
            self.chan.space.notify_one();
        }
        Some(value)
    }

    /// Pops a message without blocking.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut queue = self.chan.lock();
        match self.pop(&mut queue) {
            Some(v) => Ok(v),
            // ORDERING: Acquire pairs with the AcqRel handle-count
            // updates in `Sender`'s Clone/Drop.
            None if self.chan.senders.load(Ordering::Acquire) == 0 => {
                Err(TryRecvError::Disconnected)
            }
            None => Err(TryRecvError::Empty),
        }
    }

    /// Blocks until a message arrives or every sender is dropped.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut queue = self.chan.lock();
        loop {
            if let Some(v) = self.pop(&mut queue) {
                return Ok(v);
            }
            // ORDERING: Acquire — same pairing as in `try_recv`.
            if self.chan.senders.load(Ordering::Acquire) == 0 {
                return Err(RecvError);
            }
            queue = self
                .chan
                .ready
                .wait(queue)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Blocks until a message arrives, every sender is dropped, or
    /// `timeout` elapses. Oversized timeouts (e.g. `Duration::MAX` as
    /// "wait forever") saturate to a far-future deadline instead of
    /// panicking on `Instant` overflow.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let now = Instant::now();
        let deadline = now
            .checked_add(timeout)
            .or_else(|| now.checked_add(Duration::from_secs(60 * 60 * 24 * 365 * 30)))
            .unwrap_or(now);
        self.recv_deadline(deadline)
    }

    /// Blocks until a message arrives, every sender is dropped, or
    /// `deadline` passes.
    pub fn recv_deadline(&self, deadline: Instant) -> Result<T, RecvTimeoutError> {
        let mut queue = self.chan.lock();
        loop {
            if let Some(v) = self.pop(&mut queue) {
                return Ok(v);
            }
            // ORDERING: Acquire — same pairing as in `try_recv`.
            if self.chan.senders.load(Ordering::Acquire) == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            let Some(remaining) = deadline
                .checked_duration_since(now)
                .filter(|d| !d.is_zero())
            else {
                return Err(RecvTimeoutError::Timeout);
            };
            // Re-check the queue after every wake-up, spurious or not; a
            // message may have landed between the notify and reacquiring
            // the lock.
            let (guard, _timed_out) = self
                .chan
                .ready
                .wait_timeout(queue, remaining)
                .unwrap_or_else(PoisonError::into_inner);
            queue = guard;
        }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        // ORDERING: AcqRel — mirrors `Sender::clone` (see there).
        self.chan.receivers.fetch_add(1, Ordering::AcqRel);
        Receiver {
            chan: self.chan.clone(),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        // ORDERING: AcqRel pairs with the Acquire disconnect loads in
        // `send`/`try_send`; the decrement that reaches zero must be the
        // one that wakes the blocked senders.
        if self.chan.receivers.fetch_sub(1, Ordering::AcqRel) == 1 {
            // Last receiver: wake senders blocked on a full bounded
            // channel so they observe the disconnect.
            let _guard = self.chan.lock();
            self.chan.space.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_recv_fifo() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.try_recv(), Ok(2));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn disconnect_when_senders_dropped() {
        let (tx, rx) = unbounded::<i32>();
        tx.send(5).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(5));
        assert_eq!(rx.recv(), Err(RecvError));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn send_fails_without_receivers() {
        let (tx, rx) = unbounded();
        drop(rx);
        assert_eq!(tx.send(9), Err(SendError(9)));
    }

    #[test]
    fn blocking_recv_wakes_on_send() {
        let (tx, rx) = unbounded();
        let h = std::thread::spawn(move || rx.recv().unwrap());
        std::thread::sleep(Duration::from_millis(10));
        tx.send(77u32).unwrap();
        assert_eq!(h.join().unwrap(), 77);
    }

    #[test]
    fn mpmc_each_message_delivered_once() {
        let (tx, rx) = unbounded::<usize>();
        let mut consumers = Vec::new();
        for _ in 0..4 {
            let rx = rx.clone();
            consumers.push(std::thread::spawn(move || {
                let mut got = Vec::new();
                while let Ok(v) = rx.recv() {
                    got.push(v);
                }
                got
            }));
        }
        drop(rx);
        for i in 0..1000 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let mut all: Vec<usize> = consumers
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..1000).collect::<Vec<_>>());
    }

    #[test]
    fn bounded_try_send_reports_full() {
        let (tx, rx) = bounded(2);
        tx.try_send(1).unwrap();
        tx.try_send(2).unwrap();
        let err = tx.try_send(3).unwrap_err();
        assert!(err.is_full());
        assert!(!err.is_disconnected());
        assert_eq!(err.into_inner(), 3);
        assert_eq!(rx.recv(), Ok(1));
        tx.try_send(3).unwrap();
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.recv(), Ok(3));
    }

    #[test]
    fn bounded_send_blocks_until_space() {
        let (tx, rx) = bounded(1);
        tx.send(1u32).unwrap();
        let sender = std::thread::spawn(move || {
            tx.send(2).unwrap(); // blocks until the receiver pops 1
            Instant::now()
        });
        std::thread::sleep(Duration::from_millis(30));
        let popped_at = Instant::now();
        assert_eq!(rx.recv(), Ok(1));
        let sent_at = sender.join().unwrap();
        assert!(sent_at >= popped_at, "send must not complete before pop");
        assert_eq!(rx.recv(), Ok(2));
    }

    #[test]
    fn bounded_send_observes_receiver_disconnect() {
        let (tx, rx) = bounded(1);
        tx.send(1u32).unwrap();
        let sender = std::thread::spawn(move || tx.send(2));
        std::thread::sleep(Duration::from_millis(20));
        drop(rx); // wake the blocked sender with a disconnect
        assert_eq!(sender.join().unwrap(), Err(SendError(2)));
    }

    #[test]
    fn try_send_disconnected_without_receivers() {
        let (tx, rx) = bounded(4);
        drop(rx);
        let err = tx.try_send(7).unwrap_err();
        assert!(err.is_disconnected());
        assert_eq!(err.into_inner(), 7);
    }

    #[test]
    fn recv_timeout_times_out_then_delivers() {
        let (tx, rx) = unbounded::<u8>();
        let start = Instant::now();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(20)),
            Err(RecvTimeoutError::Timeout)
        );
        assert!(start.elapsed() >= Duration::from_millis(20));
        tx.send(9).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(20)), Ok(9));
    }

    #[test]
    fn recv_deadline_in_the_past_is_immediate_timeout() {
        let (_tx, rx) = unbounded::<u8>();
        assert_eq!(
            rx.recv_deadline(Instant::now() - Duration::from_millis(1)),
            Err(RecvTimeoutError::Timeout)
        );
    }

    #[test]
    fn recv_deadline_in_the_past_still_delivers_a_queued_message() {
        // The serve micro-batch window relies on this: once `max_delay`
        // has elapsed, already-queued requests must still drain (the
        // message check precedes the deadline check), and only an empty
        // queue times out.
        let (tx, rx) = unbounded();
        tx.send(5u8).unwrap();
        tx.send(6u8).unwrap();
        let past = Instant::now() - Duration::from_millis(1);
        assert_eq!(rx.recv_deadline(past), Ok(5));
        assert_eq!(rx.recv_deadline(past), Ok(6));
        assert_eq!(rx.recv_deadline(past), Err(RecvTimeoutError::Timeout));
        // Disconnect still wins over the timeout when the queue is empty.
        drop(tx);
        assert_eq!(rx.recv_deadline(past), Err(RecvTimeoutError::Disconnected));
    }

    #[test]
    fn wakeup_stolen_by_racing_receiver_near_deadline_times_out_cleanly() {
        // The effective "spurious wakeup near the deadline": a parked
        // receiver is notified, but a sibling receiver steals the message
        // before it reacquires the lock. The loser must re-check the
        // queue, observe the (possibly just-expired) deadline, and report
        // Timeout — never hang, never return a phantom message.
        for _ in 0..20 {
            let (tx, rx) = unbounded::<u8>();
            let rx2 = rx.clone();
            let parked = std::thread::spawn(move || {
                rx.recv_deadline(Instant::now() + Duration::from_millis(25))
            });
            let thief = std::thread::spawn(move || rx2.recv_timeout(Duration::from_millis(60)));
            std::thread::sleep(Duration::from_millis(5));
            tx.send(42).unwrap();
            let a = parked.join().unwrap();
            let b = thief.join().unwrap();
            // Exactly one receiver gets the message; the other times out
            // on its own deadline (or, for the longer-lived thief, would
            // have received it).
            match (a, b) {
                (Ok(42), Err(RecvTimeoutError::Timeout))
                | (Err(RecvTimeoutError::Timeout), Ok(42)) => {}
                other => panic!("message duplicated or lost: {other:?}"),
            }
        }
    }

    #[test]
    fn spurious_wakeup_with_empty_queue_rechecks_the_deadline() {
        // A sender that enqueues and a sibling that immediately steals
        // produce notify-then-empty wakeups for the parked receiver; its
        // deadline must still be honored to within the wait slack.
        let (tx, rx) = unbounded::<usize>();
        let rx2 = rx.clone();
        let start = Instant::now();
        let deadline = start + Duration::from_millis(40);
        let parked = std::thread::spawn(move || {
            let result = rx.recv_deadline(deadline);
            (result, Instant::now())
        });
        // Feed the thief through repeated send/steal cycles while the
        // parked receiver keeps losing the race half the time.
        let stolen = std::thread::spawn(move || {
            let mut got = 0usize;
            for _ in 0..12 {
                if rx2.recv_timeout(Duration::from_millis(4)).is_ok() {
                    got += 1;
                }
            }
            got
        });
        for i in 0..8 {
            if tx.send(i).is_err() {
                break; // both receivers already done — nothing left to race
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        let (result, finished_at) = parked.join().unwrap();
        let _ = stolen.join().unwrap();
        match result {
            Ok(_) => {} // won one of the races: fine
            Err(RecvTimeoutError::Timeout) => {
                assert!(
                    finished_at >= deadline,
                    "timed out {:?} before the deadline",
                    deadline - finished_at
                );
            }
            Err(e) => panic!("unexpected {e:?}"),
        }
        drop(tx);
    }

    #[test]
    fn try_send_racing_receiver_drop_is_full_or_disconnected_never_lost() {
        // try_send backs the serve front end's fail-fast submit; racing
        // it against the last receiver dropping must yield only Full or
        // Disconnected (message handed back each time), with every Ok
        // message either consumed or still queued — never silently lost.
        for _ in 0..10 {
            let (tx, rx) = bounded::<usize>(2);
            let producers: Vec<_> = (0..3)
                .map(|p| {
                    let tx = tx.clone();
                    std::thread::spawn(move || {
                        let mut ok = 0usize;
                        for i in 0..100 {
                            match tx.try_send(p * 100 + i) {
                                Ok(()) => ok += 1,
                                Err(e) => {
                                    let disconnected = e.is_disconnected();
                                    assert_eq!(e.into_inner(), p * 100 + i, "message handed back");
                                    if disconnected {
                                        // Channel is gone for good; every
                                        // later attempt must agree.
                                        assert!(tx.try_send(0).unwrap_err().is_disconnected());
                                        break;
                                    }
                                }
                            }
                            std::thread::yield_now();
                        }
                        ok
                    })
                })
                .collect();
            let consumer = std::thread::spawn(move || {
                let mut got = 0usize;
                for _ in 0..40 {
                    if rx.try_recv().is_ok() {
                        got += 1;
                    }
                    std::thread::yield_now();
                }
                got // receiver drops here, mid-race
            });
            let consumed = consumer.join().unwrap();
            let sent: usize = producers.into_iter().map(|h| h.join().unwrap()).sum();
            // Accepted messages are consumed or were still queued at the
            // drop (capacity bounds the difference).
            assert!(
                sent >= consumed && sent <= consumed + 2,
                "sent {sent}, consumed {consumed}"
            );
        }
    }

    #[test]
    fn recv_timeout_observes_disconnect() {
        let (tx, rx) = unbounded::<u8>();
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_secs(5)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn recv_timeout_wakes_on_send() {
        let (tx, rx) = bounded(4);
        let h = std::thread::spawn(move || rx.recv_timeout(Duration::from_secs(5)));
        std::thread::sleep(Duration::from_millis(10));
        tx.send(42u32).unwrap();
        assert_eq!(h.join().unwrap(), Ok(42));
    }

    #[test]
    fn recv_timeout_saturates_oversized_durations() {
        // Duration::MAX as "wait forever" must not panic on Instant
        // overflow; the send below unblocks it.
        let (tx, rx) = unbounded();
        let h = std::thread::spawn(move || rx.recv_timeout(Duration::MAX));
        std::thread::sleep(Duration::from_millis(10));
        tx.send(11u8).unwrap();
        assert_eq!(h.join().unwrap(), Ok(11));
    }

    #[test]
    #[should_panic(expected = "rendezvous")]
    fn bounded_zero_panics() {
        let _ = bounded::<u8>(0);
    }

    #[test]
    fn bounded_mpmc_backpressure_stress() {
        let (tx, rx) = bounded::<usize>(3);
        let mut consumers = Vec::new();
        for _ in 0..2 {
            let rx = rx.clone();
            consumers.push(std::thread::spawn(move || {
                let mut got = Vec::new();
                while let Ok(v) = rx.recv() {
                    got.push(v);
                }
                got
            }));
        }
        drop(rx);
        let mut producers = Vec::new();
        for p in 0..4 {
            let tx = tx.clone();
            producers.push(std::thread::spawn(move || {
                for i in 0..250 {
                    tx.send(p * 250 + i).unwrap();
                }
            }));
        }
        drop(tx);
        for p in producers {
            p.join().unwrap();
        }
        let mut all: Vec<usize> = consumers
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..1000).collect::<Vec<_>>());
    }
}
