//! Offline stand-in for the `criterion` crate.
//!
//! Implements the subset the workspace's benches use — `Criterion`,
//! `benchmark_group`, `sample_size` / `warm_up_time` /
//! `measurement_time`, `BenchmarkId`, `Bencher::iter`, and the
//! `criterion_group!` / `criterion_main!` macros — as a plain
//! wall-clock harness: one warm-up call, then `sample_size` samples of
//! adaptively batched iterations, reporting min/mean per iteration.
//! No statistics, plots, or regression tracking; results print to
//! stdout. Invoke via `cargo bench` exactly as with real criterion.

// No unsafe code: raw-pointer and atomics tricks live in the audited
// modules of fastbn-potential/parallel/inference (see FB-L4 in
// crates/analyze); everything here must stay checkable by construction.
#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Identifies one benchmark within a group (`function/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Two-part id: function name + parameter.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{function}/{parameter}"),
        }
    }

    /// Single-part id.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// Passed to the measured closure; call [`Bencher::iter`] exactly once.
pub struct Bencher {
    iters_per_sample: u64,
    samples: usize,
    /// Per-iteration durations of each sample, filled by `iter`.
    results: Vec<Duration>,
}

impl Bencher {
    /// Times `body` over the configured samples. The closure's return
    /// value is black-boxed so the optimizer cannot elide the work.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut body: F) {
        // Warm-up + batch sizing: one untimed call, then scale the batch
        // so a sample is not dominated by timer overhead.
        let start = Instant::now();
        black_box(body());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let target = Duration::from_millis(2);
        let batch = if once >= target {
            1
        } else {
            (target.as_nanos() / once.as_nanos()).clamp(1, 1 << 20) as u64
        };
        let batch = batch.min(self.iters_per_sample.max(1));
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(body());
            }
            self.results.push(start.elapsed() / batch as u32);
        }
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: usize,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted for API compatibility; the shim's warm-up is one call.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the shim sizes batches itself.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs and reports one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            iters_per_sample: u64::MAX,
            samples: self.sample_size,
            results: Vec::with_capacity(self.sample_size),
        };
        f(&mut bencher);
        let (min, mean) = summarize(&bencher.results);
        println!(
            "{}/{}: min {} mean {} ({} samples)",
            self.name,
            id.label,
            fmt_duration(min),
            fmt_duration(mean),
            bencher.results.len()
        );
        self
    }

    /// Ends the group (printing happens eagerly; this is a no-op).
    pub fn finish(&mut self) {}
}

fn summarize(results: &[Duration]) -> (Duration, Duration) {
    if results.is_empty() {
        return (Duration::ZERO, Duration::ZERO);
    }
    let min = results.iter().min().copied().unwrap_or_default();
    let total: Duration = results.iter().sum();
    (min, total / results.len() as u32)
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos}ns")
    } else if nanos < 1_000_000 {
        format!("{:.2}µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2}ms", nanos as f64 / 1e6)
    } else {
        format!("{:.3}s", nanos as f64 / 1e9)
    }
}

/// Top-level harness handle.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("== group {name} ==");
        BenchmarkGroup {
            name,
            sample_size: 10,
            _criterion: self,
        }
    }

    /// Runs and reports a standalone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group(name.to_string())
            .bench_function(BenchmarkId::from_parameter("-"), f);
        self
    }
}

/// Identity function the optimizer must assume reads its argument.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a group-runner function, as in real criterion.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main`, running every listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim-test");
        group.sample_size(3);
        let mut count = 0u64;
        group.bench_function(BenchmarkId::new("count", "up"), |b| {
            b.iter(|| {
                count += 1;
                count
            })
        });
        group.finish();
        assert!(count > 3, "body must have run warm-up + samples: {count}");
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_nanos(10)), "10ns");
        assert_eq!(fmt_duration(Duration::from_micros(2)), "2.00µs");
        assert_eq!(fmt_duration(Duration::from_millis(3)), "3.00ms");
        assert_eq!(fmt_duration(Duration::from_secs(1)), "1.000s");
    }
}
