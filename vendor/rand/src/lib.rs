//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! shim provides exactly the surface the workspace uses: a seedable
//! deterministic generator ([`rngs::StdRng`]), the [`SeedableRng`] and
//! [`Rng`] traits, `gen::<f64>()`, `gen::<bool>()`, and `gen_range` over
//! `usize` ranges.
//!
//! The generator is xoshiro256** seeded through SplitMix64 — a different
//! stream than upstream `StdRng` (ChaCha12), which is fine here: nothing
//! in the workspace depends on the exact stream, only on seed
//! determinism (same seed, same sequence, forever).

// No unsafe code: raw-pointer and atomics tricks live in the audited
// modules of fastbn-potential/parallel/inference (see FB-L4 in
// crates/analyze); everything here must stay checkable by construction.
#![forbid(unsafe_code)]

/// Core trait: a source of uniformly distributed 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly from a generator's raw bits (the shim's
/// version of `Standard: Distribution<T>`).
pub trait StandardSample: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high-quality mantissa bits -> uniform [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // Use a high bit; low bits of some generators are weaker.
        rng.next_u64() >> 63 == 1
    }
}

/// Ranges that `Rng::gen_range` accepts.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range. Panics if empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    // Modulo bias is at most span / 2^64 — irrelevant for the seeded
    // test/generator workloads this shim serves.
    rng.next_u64() % span
}

impl SampleRange<usize> for core::ops::Range<usize> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> usize {
        assert!(self.start < self.end, "cannot sample empty range");
        let span = (self.end - self.start) as u64;
        self.start + uniform_u64(rng, span) as usize
    }
}

impl SampleRange<usize> for core::ops::RangeInclusive<usize> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> usize {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        let span = (hi - lo) as u64 + 1;
        lo + uniform_u64(rng, span) as usize
    }
}

impl SampleRange<u64> for core::ops::Range<u64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> u64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + uniform_u64(rng, self.end - self.start)
    }
}

/// Convenience sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value of type `T` (uniform `[0, 1)` for `f64`, fair coin
    /// for `bool`).
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws uniformly from `range`; panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic seeded generator (xoshiro256** under the hood).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<f64>().to_bits(), b.gen::<f64>().to_bits());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..32).filter(|_| a.gen::<f64>() == b.gen::<f64>()).count();
        assert!(same < 4);
    }

    #[test]
    fn f64_in_unit_interval_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        assert!((sum / 10_000.0 - 0.5).abs() < 0.02);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x = rng.gen_range(5usize..17);
            assert!((5..17).contains(&x));
            let y = rng.gen_range(2usize..=4);
            assert!((2..=4).contains(&y));
        }
    }

    #[test]
    fn bool_is_roughly_fair() {
        let mut rng = StdRng::seed_from_u64(9);
        let heads = (0..10_000).filter(|_| rng.gen::<bool>()).count();
        assert!((heads as f64 / 10_000.0 - 0.5).abs() < 0.02);
    }
}
