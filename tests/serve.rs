//! The serving front end's contract, per the acceptance criteria:
//!
//! * results delivered through [`Server`] under **concurrent
//!   multi-threaded submitters** are bit-identical to the sequential
//!   per-query oracle (a lone `Session` running the same queries one at
//!   a time), for every engine family — batching, windows, and worker
//!   scheduling must be invisible;
//! * the **bounded queue** pushes back as configured: `try_submit`
//!   rejects with `QueueFull` under a burst, blocking `submit` parks and
//!   then completes;
//! * **dropping a `Pending` handle cancels** the request cleanly — the
//!   work is skipped, neighbours are unaffected, and the counters say
//!   so;
//! * **shutdown drains**: every accepted request is answered before the
//!   workers exit, later submissions are rejected, and plain `drop`
//!   behaves the same.

use std::sync::Arc;
use std::time::Duration;

use fastbn::bayesnet::{datasets, sampler};
use fastbn::{
    EngineKind, InferenceError, Prepared, Query, QueryResult, ServeError, Server, Solver,
    SubmitErrorKind,
};
use fastbn_bench::workloads::workload_by_name;

/// A mixed query stream over Asia, failing slots included.
fn mixed_queries(net: &fastbn::BayesianNetwork, n_sampled: usize) -> Vec<Query> {
    let dysp = net.var_id("Dyspnea").unwrap();
    let lung = net.var_id("LungCancer").unwrap();
    let xray = net.var_id("XRay").unwrap();
    let tub = net.var_id("Tuberculosis").unwrap();
    let either = net.var_id("TbOrCa").unwrap();
    let mut queries: Vec<Query> = sampler::generate_cases(net, n_sampled, 0.25, 23)
        .into_iter()
        .map(|c| Query::new().evidence(c.evidence))
        .collect();
    queries.push(Query::new().observe(dysp, 0).targets([lung, tub]));
    queries.push(Query::new().likelihood(xray, vec![0.8, 0.2]));
    queries.push(Query::new().observe(dysp, 0).mpe());
    queries.push(Query::new().observe(tub, 0).observe(either, 1)); // P(e) = 0
    queries.push(Query::new().likelihood(xray, vec![0.0, 0.0])); // malformed
    queries
}

/// The sequential per-query oracle: one borrowed session, one query at a
/// time, in input order.
fn oracle(solver: &Solver, queries: &[Query]) -> Vec<Result<QueryResult, InferenceError>> {
    let mut session = solver.session();
    queries.iter().map(|q| session.run(q)).collect()
}

/// Server results must match the oracle slot by slot: same `Ok` payloads
/// (bitwise, for marginals), same typed errors.
fn assert_matches_oracle(
    expected: &[Result<QueryResult, InferenceError>],
    got: &[Result<QueryResult, ServeError>],
    label: &str,
) {
    assert_eq!(expected.len(), got.len(), "{label}: length mismatch");
    for (i, (want, have)) in expected.iter().zip(got).enumerate() {
        match (want, have) {
            (Ok(w), Ok(h)) => {
                assert_eq!(w, h, "{label}: slot {i} differs");
                if let (QueryResult::Marginals(p), QueryResult::Marginals(q)) = (w, h) {
                    assert_eq!(p.max_abs_diff(q), 0.0, "{label}: slot {i} not bitwise");
                    assert_eq!(p.prob_evidence.to_bits(), q.prob_evidence.to_bits());
                }
            }
            (Err(w), Err(ServeError::Inference(h))) => {
                assert_eq!(w, h, "{label}: slot {i} error differs");
            }
            _ => panic!("{label}: slot {i} Ok/Err shape differs: {want:?} vs {have:?}"),
        }
    }
}

#[test]
fn concurrent_submitters_match_sequential_oracle_for_every_engine() {
    let net = datasets::asia();
    let prepared = Arc::new(Prepared::new(&net, &Default::default()));
    let queries = mixed_queries(&net, 19); // 24 queries, failing slots included
    let submitters = 4;
    for kind in EngineKind::all() {
        let solver = Arc::new(
            Solver::from_prepared(prepared.clone())
                .engine(kind)
                .threads(2)
                .build(),
        );
        let expected = oracle(&solver, &queries);
        let server = Server::builder(Arc::clone(&solver))
            .workers(2)
            .max_batch(3)
            .max_delay(Duration::from_micros(100))
            .build();
        // Multi-threaded submitters, each owning a strided share of the
        // stream; per-slot results are reassembled in input order.
        let mut got: Vec<Option<Result<QueryResult, ServeError>>> = vec![None; queries.len()];
        let collected: Vec<(usize, Result<QueryResult, ServeError>)> =
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..submitters)
                    .map(|s| {
                        let server = &server;
                        let queries = &queries;
                        scope.spawn(move || {
                            let mut mine = Vec::new();
                            for (idx, query) in
                                queries.iter().enumerate().skip(s).step_by(submitters)
                            {
                                let pending =
                                    server.submit(query.clone()).expect("server accepting");
                                mine.push((idx, pending.wait()));
                            }
                            mine
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .flat_map(|h| h.join().expect("submitter panicked"))
                    .collect()
            });
        for (idx, result) in collected {
            got[idx] = Some(result);
        }
        let got: Vec<_> = got
            .into_iter()
            .map(|slot| slot.expect("every slot answered"))
            .collect();
        assert_matches_oracle(&expected, &got, &format!("{kind:?}"));
        // Counters are bumped by workers *after* each reply is
        // delivered; shutdown joins them, making the totals final.
        server.shutdown();
        let stats = server.stats();
        assert_eq!(stats.submitted, queries.len() as u64);
        assert_eq!(stats.completed, queries.len() as u64);
        assert_eq!(stats.cancelled, 0);
        assert!(stats.batches <= stats.submitted, "windows coalesce");
    }
}

/// A solver whose individual queries take several milliseconds, so the
/// tests below can deterministically observe a busy worker.
fn slow_solver() -> Arc<Solver> {
    let w = workload_by_name("diabetes").expect("bench workload exists");
    Arc::new(Solver::new(&w.build()))
}

#[test]
fn bounded_queue_rejects_bursts_and_blocking_submit_parks() {
    let solver = slow_solver();
    let server = Server::builder(Arc::clone(&solver))
        .workers(1)
        .max_batch(1)
        .max_delay(Duration::ZERO)
        .queue_capacity(2)
        .build();
    // Burst: each query runs for milliseconds while try_submit returns
    // in microseconds, so the 2-slot queue must fill within a handful of
    // fail-fast submissions.
    let query = Query::new(); // all marginals, no evidence: the slow path
    let mut accepted = Vec::new();
    let mut saw_full = false;
    for _ in 0..16 {
        match server.try_submit(query.clone()) {
            Ok(pending) => accepted.push(pending),
            Err(e) => {
                assert_eq!(e.kind(), SubmitErrorKind::QueueFull);
                // The rejected query comes back intact for a retry.
                assert_eq!(e.into_query(), query);
                saw_full = true;
                break;
            }
        }
    }
    assert!(
        saw_full,
        "a 16-shot burst against capacity 2 must hit QueueFull"
    );
    assert!(server.stats().rejected >= 1);
    // Blocking submit parks on the full queue instead of rejecting, and
    // completes once the worker drains.
    let blocking = {
        let server = &server;
        let query = query.clone();
        std::thread::scope(|scope| {
            scope
                .spawn(move || {
                    server
                        .submit(query)
                        .expect("blocking submit succeeds")
                        .wait()
                })
                .join()
                .expect("blocked submitter panicked")
        })
    };
    assert!(blocking.is_ok(), "parked request still gets its result");
    for pending in accepted {
        assert!(pending.wait().is_ok(), "burst survivors all answered");
    }
    server.shutdown();
}

#[test]
fn dropped_pending_cancels_cleanly_without_touching_neighbours() {
    let solver = slow_solver();
    let expected = {
        let mut session = solver.session();
        session.run(&Query::new()).unwrap()
    };
    let server = Server::builder(Arc::clone(&solver))
        .workers(1)
        .max_batch(1)
        .max_delay(Duration::ZERO)
        .queue_capacity(8)
        .build();
    // Occupy the single worker for ~10ms, then line up: keep, cancel,
    // keep. The cancelled request is dropped while still queued.
    let q0 = server.submit(Query::new()).unwrap();
    let q1 = server.submit(Query::new()).unwrap();
    let q2 = server.submit(Query::new()).unwrap();
    let q3 = server.submit(Query::new()).unwrap();
    drop(q2); // cancel while queued behind the busy worker
    for (name, pending) in [("q0", q0), ("q1", q1), ("q3", q3)] {
        let got = pending
            .wait()
            .unwrap_or_else(|e| panic!("{name} failed: {e}"));
        assert_eq!(
            got, expected,
            "{name}: neighbours unaffected, bit-identical"
        );
    }
    // Joining the worker (shutdown) makes the counters final: it must
    // have observed the dead handle and skipped the work.
    server.shutdown();
    let stats = server.stats();
    assert_eq!(stats.submitted, 4);
    assert_eq!(stats.cancelled, 1);
    assert_eq!(stats.completed, 3);
    assert_eq!(
        stats.batches, 3,
        "the cancelled request never became a batch"
    );
}

#[test]
fn wait_timeout_hands_the_request_back_then_completes() {
    let solver = slow_solver();
    let server = Server::builder(Arc::clone(&solver))
        .workers(1)
        .max_batch(1)
        .max_delay(Duration::ZERO)
        .build();
    let first = server.submit(Query::new()).unwrap();
    let second = server.submit(Query::new()).unwrap();
    // `second` is queued behind ~10ms of work; a 100µs wait must expire
    // and return the handle rather than cancel it.
    let second = match second.wait_timeout(Duration::from_micros(100)) {
        Err(pending) => pending,
        Ok(result) => panic!("a queued request cannot be done in 100µs: {result:?}"),
    };
    assert!(first.wait().is_ok());
    assert!(second.wait().is_ok(), "handed-back handle still completes");
    server.shutdown();
}

#[test]
fn shutdown_drains_accepted_requests_then_rejects() {
    let net = datasets::asia();
    let solver = Arc::new(Solver::new(&net));
    let queries = mixed_queries(&net, 15); // 20 queries
    let expected = oracle(&solver, &queries);
    let server = Server::builder(Arc::clone(&solver))
        .workers(2)
        .max_batch(4)
        .max_delay(Duration::from_millis(1))
        .queue_capacity(64)
        .build();
    let pending: Vec<_> = queries
        .iter()
        .map(|q| server.submit(q.clone()).expect("accepting before shutdown"))
        .collect();
    // Shut down while requests are still queued/in flight: intake closes
    // but every accepted request is drained, not discarded.
    server.shutdown();
    assert!(server.is_shut_down());
    let got: Vec<_> = pending.into_iter().map(|p| p.wait()).collect();
    assert_matches_oracle(&expected, &got, "drained through shutdown");
    let rejected = server.submit(Query::new()).expect_err("intake closed");
    assert_eq!(rejected.kind(), SubmitErrorKind::ShutDown);
    let rejected = server.try_submit(Query::new()).expect_err("intake closed");
    assert_eq!(rejected.kind(), SubmitErrorKind::ShutDown);
    server.shutdown(); // idempotent
    let stats = server.stats();
    assert_eq!(stats.completed, queries.len() as u64);
}

#[test]
fn dropping_the_server_drains_like_shutdown() {
    let net = datasets::sprinkler();
    let solver = Arc::new(Solver::new(&net));
    let wet = net.var_id("WetGrass").unwrap();
    let server = Server::new(Arc::clone(&solver));
    let pending: Vec<_> = (0..8)
        .map(|i| server.submit(Query::new().observe(wet, i % 2)).unwrap())
        .collect();
    drop(server); // joins workers after the backlog is drained
    for p in pending {
        assert!(p.wait().is_ok(), "results survive the server");
    }
}

#[test]
fn unbounded_window_delay_means_wait_for_a_full_batch() {
    // `max_delay: Duration::MAX` is the legitimate "never dispatch a
    // partial window" configuration; it must saturate, not panic the
    // worker on `Instant` overflow.
    let net = datasets::sprinkler();
    let solver = Arc::new(Solver::new(&net));
    let server = Server::builder(Arc::clone(&solver))
        .workers(1)
        .max_batch(2)
        .max_delay(Duration::MAX)
        .build();
    let a = server.submit(Query::new()).unwrap();
    let b = server.submit(Query::new()).unwrap(); // window full → dispatch
    assert!(a.wait().is_ok());
    assert!(b.wait().is_ok());
    // An oversized client timeout saturates the same way.
    let c = server.submit(Query::new()).unwrap();
    let d = server.submit(Query::new()).unwrap();
    assert!(matches!(c.wait_timeout(Duration::MAX), Ok(Ok(_))));
    assert!(d.wait().is_ok());
    server.shutdown();
    assert_eq!(server.stats().worker_panics, 0);
}

#[test]
fn window_dedup_fans_one_computation_out_to_identical_requests() {
    // A full window of 9: one distinct query plus 8 requests that all
    // canonicalize to the same key (two scale variants of one likelihood
    // vector). `max_delay: MAX` + `max_batch: 9` makes the window
    // deterministic; dedup must compute 2 queries, answer 9 clients, and
    // stay bit-identical to the sequential oracle.
    let net = datasets::asia();
    let solver = Arc::new(Solver::new(&net));
    let xray = net.var_id("XRay").unwrap();
    let dysp = net.var_id("Dyspnea").unwrap();
    let blocker = Query::new().observe(dysp, 1);
    let soft_a = Query::new().likelihood(xray, vec![0.8, 0.2]);
    let soft_b = Query::new().likelihood(xray, vec![1.6, 0.4]); // same key: scale canonicalized
    assert_eq!(soft_a.key(), soft_b.key());
    let expected = oracle(&solver, &[blocker.clone(), soft_a.clone()]);

    let server = Server::builder(Arc::clone(&solver))
        .workers(1)
        .max_batch(9)
        .max_delay(Duration::MAX)
        .build();
    assert!(server.dedup(), "dedup is on by default");
    let first = server.submit(blocker).unwrap();
    let softs: Vec<_> = (0..8)
        .map(|i| {
            let q = if i % 2 == 0 { &soft_a } else { &soft_b };
            server.submit(q.clone()).unwrap()
        })
        .collect();
    let got_first = first.wait();
    assert_matches_oracle(&expected[..1], &[got_first], "dedup blocker");
    for (i, pending) in softs.into_iter().enumerate() {
        let got = pending.wait();
        assert_matches_oracle(&expected[1..], &[got], &format!("dedup waiter {i}"));
    }
    server.shutdown();
    let stats = server.stats();
    assert_eq!(stats.submitted, 9);
    assert_eq!(stats.completed, 9, "every client answered");
    assert_eq!(stats.dedups, 7, "8 identical requests, 1 computed");
    assert_eq!(stats.batches, 1, "one full window");
}

#[test]
fn dedup_can_be_disabled() {
    let net = datasets::sprinkler();
    let solver = Arc::new(Solver::new(&net));
    let server = Server::builder(Arc::clone(&solver))
        .workers(1)
        .max_batch(4)
        .max_delay(Duration::MAX)
        .dedup(false)
        .build();
    assert!(!server.dedup());
    let pending: Vec<_> = (0..4)
        .map(|_| server.submit(Query::new()).unwrap())
        .collect();
    for p in pending {
        assert!(p.wait().is_ok());
    }
    server.shutdown();
    let stats = server.stats();
    assert_eq!(stats.dedups, 0, "identical requests computed separately");
    assert_eq!(stats.completed, 4);
}

#[test]
fn stats_invariant_holds_under_concurrent_submit_cancel_shutdown() {
    // The ServerStats accounting contract: every accepted request is
    // counted exactly once as completed or cancelled — including
    // requests whose handle is dropped *between* dequeue and delivery —
    // and `completed + cancelled ≤ dequeued ≤ submitted` is observable
    // from concurrent snapshots while the pipeline churns.
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

    let net = datasets::asia();
    let solver = Arc::new(Solver::new(&net));
    let dysp = net.var_id("Dyspnea").unwrap();
    let server = Server::builder(Arc::clone(&solver))
        .workers(2)
        .max_batch(4)
        .max_delay(Duration::from_micros(100))
        .queue_capacity(8)
        .build();
    let accepted = AtomicU64::new(0);
    let waited = AtomicU64::new(0);
    let dropped = AtomicU64::new(0);
    let stop_sampling = AtomicBool::new(false);
    std::thread::scope(|scope| {
        // A sampler hammering the snapshot while requests race through.
        let sampler = {
            let server = &server;
            let stop = &stop_sampling;
            scope.spawn(move || {
                let mut samples = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let s = server.stats();
                    assert!(
                        s.completed + s.cancelled <= s.dequeued,
                        "resolution cannot lead dequeue: {s:?}"
                    );
                    assert!(
                        s.dequeued <= s.submitted,
                        "dequeue cannot lead submit: {s:?}"
                    );
                    samples += 1;
                }
                samples
            })
        };
        let submitters: Vec<_> = (0..4)
            .map(|t| {
                let server = &server;
                let (accepted, waited, dropped) = (&accepted, &waited, &dropped);
                scope.spawn(move || {
                    for i in 0..200usize {
                        let query = Query::new().observe(dysp, (t + i) % 2);
                        let pending = match server.submit(query) {
                            Ok(p) => p,
                            Err(_) => break, // only possible post-shutdown
                        };
                        accepted.fetch_add(1, Ordering::Relaxed);
                        match (t + i) % 5 {
                            // Drop immediately: usually cancelled while
                            // queued, sometimes after dequeue.
                            0 => {
                                dropped.fetch_add(1, Ordering::Relaxed);
                                drop(pending);
                            }
                            // Drop after a beat: often lands between
                            // dequeue and delivery.
                            1 => {
                                std::thread::yield_now();
                                dropped.fetch_add(1, Ordering::Relaxed);
                                drop(pending);
                            }
                            _ => {
                                waited.fetch_add(1, Ordering::Relaxed);
                                pending.wait().expect("well-formed query completes");
                            }
                        }
                    }
                })
            })
            .collect();
        for handle in submitters {
            handle.join().expect("submitter panicked");
        }
        // Shut down while cancellations may still be in flight; the
        // drain resolves every accepted request.
        server.shutdown();
        stop_sampling.store(true, Ordering::Relaxed);
        assert!(sampler.join().expect("sampler panicked") > 0);
    });
    let stats = server.stats();
    let accepted = accepted.load(Ordering::Relaxed);
    assert_eq!(stats.worker_panics, 0);
    assert_eq!(
        stats.submitted, accepted,
        "rejections never counted as submitted"
    );
    assert_eq!(
        stats.completed + stats.cancelled,
        stats.submitted,
        "after the drain every request resolved exactly once: {stats:?}"
    );
    assert_eq!(
        stats.dequeued, stats.submitted,
        "the drain dequeues everything"
    );
    assert!(
        stats.completed >= waited.load(Ordering::Relaxed),
        "every awaited request completed (dropped ones may too)"
    );
    assert!(
        stats.cancelled <= dropped.load(Ordering::Relaxed),
        "only dropped handles can cancel"
    );
}

#[test]
fn server_stats_start_at_zero() {
    let solver = Arc::new(Solver::new(&datasets::sprinkler()));
    let server = Server::new(solver);
    assert_eq!(server.stats(), fastbn::ServerStats::default());
    assert_eq!(server.workers(), 1);
    assert!(!server.is_shut_down());
}
