//! A session whose query fails — impossible evidence, bogus evidence, a
//! malformed likelihood, a failing MPE — must be as good as new for its
//! next query: no stale scratch may leak from the error into later
//! results, for any engine family.

use std::sync::Arc;

use fastbn::bayesnet::datasets;
use fastbn::{
    EngineKind, Evidence, InferenceError, LikelihoodDefect, Prepared, Query, Solver, VarId,
};

/// Asia evidence with `P(e) = 0`: tuberculosis present but the or-gate
/// `TbOrCa` reporting false.
fn impossible(net: &fastbn::BayesianNetwork) -> Evidence {
    let tub = net.var_id("Tuberculosis").unwrap();
    let either = net.var_id("TbOrCa").unwrap();
    Evidence::from_pairs([(tub, 0), (either, 1)])
}

#[test]
fn error_then_success_on_one_session_for_every_engine() {
    let net = datasets::asia();
    let prepared = Arc::new(Prepared::new(&net, &Default::default()));
    let dysp = net.var_id("Dyspnea").unwrap();
    let bad_ev = impossible(&net);
    let good_ev = Evidence::from_pairs([(dysp, 0)]);

    for kind in EngineKind::all() {
        let solver = Solver::from_prepared(prepared.clone())
            .engine(kind)
            .threads(2)
            .build();
        // Ground truth from fresh sessions that have never errored.
        let expected_good = solver.posteriors(&good_ev).unwrap();
        let expected_empty = solver.posteriors(&Evidence::empty()).unwrap();
        let expected_mpe = solver.session().mpe(&good_ev).unwrap();

        let mut session = solver.session();
        for round in 0..3 {
            // Impossible evidence: detected at extraction, after the
            // scratch has been fully propagated into a dead end.
            assert_eq!(
                session.posteriors(&bad_ev).unwrap_err(),
                InferenceError::ImpossibleEvidence,
                "{kind} round {round}"
            );
            let got = session.posteriors(&good_ev).unwrap();
            assert_eq!(
                expected_good.max_abs_diff(&got),
                0.0,
                "{kind} round {round}: stale scratch after ImpossibleEvidence"
            );

            // Validation errors: rejected before touching scratch.
            assert!(session
                .posteriors(&Evidence::from_pairs([(VarId(999), 0)]))
                .is_err());
            assert_eq!(
                session
                    .run(&Query::new().likelihood(dysp, vec![0.0, 0.0]))
                    .unwrap_err(),
                InferenceError::MalformedLikelihood {
                    var: dysp.index(),
                    defect: LikelihoodDefect::AllZero,
                }
            );
            let got = session.posteriors(&Evidence::empty()).unwrap();
            assert_eq!(
                expected_empty.max_abs_diff(&got),
                0.0,
                "{kind} round {round}: stale scratch after validation error"
            );

            // A failing max-product pass, then a succeeding one.
            assert_eq!(
                session.mpe(&bad_ev).unwrap_err(),
                InferenceError::ImpossibleEvidence
            );
            assert_eq!(session.mpe(&good_ev).unwrap(), expected_mpe, "{kind}");

            // And a failing MPE must not corrupt a following marginal
            // query either (the passes share clique scratch).
            assert_eq!(
                session.mpe(&bad_ev).unwrap_err(),
                InferenceError::ImpossibleEvidence
            );
            let got = session.posteriors(&good_ev).unwrap();
            assert_eq!(expected_good.max_abs_diff(&got), 0.0, "{kind}");
        }
    }
}

#[test]
fn errored_scratch_recycled_through_the_pool_is_clean() {
    // The scratch of a dropped, errored session goes back to the solver's
    // pool; the next session draws it and must see no residue.
    let net = datasets::asia();
    let solver = Solver::builder(&net)
        .engine(EngineKind::Hybrid)
        .threads(2)
        .build();
    let bad_ev = impossible(&net);
    let expected = solver.posteriors(&Evidence::empty()).unwrap();
    {
        let mut session = solver.session();
        assert!(session.posteriors(&bad_ev).is_err());
    } // dirty scratch parked here
    assert_eq!(solver.pooled_states(), 1);
    let mut session = solver.session();
    assert_eq!(solver.pooled_states(), 0, "the dirty state was reused");
    let got = session.posteriors(&Evidence::empty()).unwrap();
    assert_eq!(expected.max_abs_diff(&got), 0.0);
}

#[test]
fn error_then_success_with_virtual_evidence_and_targets() {
    // Mixed query kinds around the failure, exercising the targeted and
    // virtual-evidence extraction paths on reused scratch.
    let net = datasets::asia();
    let solver = Solver::new(&net);
    let dysp = net.var_id("Dyspnea").unwrap();
    let lung = net.var_id("LungCancer").unwrap();
    let targeted = Query::new().observe(dysp, 0).targets([lung]);
    let virt = Query::new().likelihood(dysp, vec![0.7, 0.3]);
    let expected_targeted = solver.query(&targeted).unwrap();
    let expected_virt = solver.query(&virt).unwrap();

    let mut session = solver.session();
    assert!(session.posteriors(&impossible(&net)).is_err());
    assert_eq!(session.run(&targeted).unwrap(), expected_targeted);
    assert!(session.mpe(&impossible(&net)).is_err());
    assert_eq!(session.run(&virt).unwrap(), expected_virt);
}
