//! End-to-end checks on the paper-scale workload analogues: structure
//! statistics, engine agreement, determinism across repeated preparation,
//! and the root-selection layer reduction on real benchmark structures.

use std::sync::Arc;

use fastbn::inference::validate::assert_engines_agree;
use fastbn::jtree::{root_tree, LayerSchedule, RootStrategy};
use fastbn::{EngineKind, Prepared, Solver};
use fastbn_bench::workloads::{all_workloads, workload_by_name};

#[test]
fn workload_structures_are_tractable() {
    for w in all_workloads() {
        let net = w.build();
        let prepared = Prepared::new(&net, &Default::default());
        let stats = fastbn::jtree::tree_stats(&net, &prepared.built);
        assert!(
            stats.max_clique_entries < 1 << 22,
            "{}: max clique {} entries",
            w.name,
            stats.max_clique_entries
        );
        assert!(
            prepared.built.tree.verify_running_intersection(),
            "{}",
            w.name
        );
    }
}

#[test]
fn engines_agree_on_hailfinder_analogue() {
    let w = workload_by_name("hailfinder").unwrap();
    let net = w.build();
    let cases = w.cases(&net, 3);
    assert_engines_agree(&net, &cases, &[2], 1e-7);
}

#[test]
fn parallel_engines_agree_with_seq_on_large_analogues() {
    // VE is too slow on the big nets; bitwise JT-vs-JT agreement is the
    // meaningful check here (VE agreement is covered on smaller nets).
    for name in ["pigs", "munin2"] {
        let w = workload_by_name(name).unwrap();
        let net = w.build();
        let prepared = Arc::new(Prepared::new(&net, &Default::default()));
        let cases = w.cases(&net, 2);
        let seq = Solver::from_prepared(prepared.clone()).build();
        let mut seq_session = seq.session();
        for kind in EngineKind::parallel() {
            let solver = Solver::from_prepared(prepared.clone())
                .engine(kind)
                .threads(2)
                .build();
            let mut session = solver.session();
            for ev in &cases {
                let a = seq_session.posteriors(ev).unwrap();
                let b = session.posteriors(ev).unwrap();
                assert_eq!(a.max_abs_diff(&b), 0.0, "{name}/{kind}");
            }
        }
    }
}

#[test]
fn preparation_is_deterministic() {
    let w = workload_by_name("pathfinder").unwrap();
    let net1 = w.build();
    let net2 = w.build();
    let p1 = Prepared::new(&net1, &Default::default());
    let p2 = Prepared::new(&net2, &Default::default());
    assert_eq!(p1.num_cliques(), p2.num_cliques());
    for c in 0..p1.num_cliques() {
        assert_eq!(p1.initial_clique(c), p2.initial_clique(c));
    }
    assert_eq!(p1.assignment, p2.assignment);
}

#[test]
fn center_rooting_reduces_layers_on_benchmark_structures() {
    // The root-selection claim on the actual evaluation structures: the
    // center root must (roughly) halve the deepest-rooted layer count.
    for w in all_workloads() {
        let net = w.build();
        let built = fastbn::jtree::build_junction_tree(&net, &Default::default());
        let center = built.schedule.num_layers();
        let worst = LayerSchedule::new(&built.tree, &root_tree(&built.tree, RootStrategy::Worst))
            .num_layers();
        assert!(
            center <= worst / 2 + 1,
            "{}: center {center} vs worst {worst}",
            w.name
        );
    }
}

#[test]
fn query_throughput_smoke() {
    // Ensure a full 10-case batch on a large analogue completes and every
    // posterior is a distribution (guards against silent NaN creep).
    let w = workload_by_name("munin2").unwrap();
    let net = w.build();
    let solver = Solver::builder(&net)
        .engine(EngineKind::Hybrid)
        .threads(2)
        .build();
    let mut session = solver.session();
    for ev in w.cases(&net, 10) {
        let post = session.posteriors(&ev).unwrap();
        assert!(post.prob_evidence.is_finite() && post.prob_evidence > 0.0);
        for v in 0..net.num_vars() {
            let m = post.marginal(fastbn::VarId::from_index(v));
            let sum: f64 = m.iter().sum();
            assert!((sum - 1.0).abs() < 1e-6, "var {v} marginal sums to {sum}");
        }
    }
}
