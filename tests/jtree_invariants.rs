//! Property-based tests of the junction-tree pipeline: every random
//! network must yield a tree satisfying the running intersection
//! property, family coverage, and a consistent layer schedule; the center
//! root must never produce more layers than the alternatives.

use fastbn::bayesnet::generators::{self, ArityDist, CptStyle, WindowedDagSpec};
use fastbn::jtree::{
    build_junction_tree, root_tree, JtreeOptions, LayerSchedule, RootStrategy,
};
use fastbn::VarId;
use proptest::prelude::*;

fn arb_spec() -> impl Strategy<Value = WindowedDagSpec> {
    (5usize..60, 1usize..4, 2usize..9, 0u64..1000, 1usize..4).prop_map(
        |(nodes, max_parents, window, seed, arity_max)| WindowedDagSpec {
            name: "prop".into(),
            nodes,
            target_arcs: nodes * 3 / 2,
            max_parents,
            window,
            arity: ArityDist::Uniform {
                min: 2,
                max: 1 + arity_max,
            },
            cpt: CptStyle { alpha: 1.0 },
            seed,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn junction_tree_invariants_hold(spec in arb_spec()) {
        let net = generators::windowed_dag(&spec);
        let built = build_junction_tree(&net, &JtreeOptions::default());
        // Running intersection property.
        prop_assert!(built.tree.verify_running_intersection());
        // Tree/forest edge count.
        prop_assert!(built.tree.is_forest());
        // Every CPT family is covered by some clique.
        for v in 0..net.num_vars() {
            let fam = net.dag().family(VarId::from_index(v));
            prop_assert!(built.tree.smallest_containing(&fam).is_some());
        }
        // Schedule covers every non-root clique exactly once per pass.
        let sched = &built.schedule;
        let collect_total: usize = sched.collect_layers.iter().map(Vec::len).sum();
        let dist_total: usize = sched.distribute_layers.iter().map(Vec::len).sum();
        prop_assert_eq!(collect_total, sched.num_messages());
        prop_assert_eq!(dist_total, sched.num_messages());
        prop_assert_eq!(
            sched.num_messages(),
            built.tree.num_cliques() - built.tree.components.len()
        );
        // Collect layers are deepest-first and each layer is one depth.
        let mut last_depth = usize::MAX;
        for layer in &sched.collect_layers {
            prop_assert!(!layer.is_empty());
            let d = built.rooted.depth[sched.messages[layer[0]].child];
            prop_assert!(layer.iter().all(|&id| built.rooted.depth[sched.messages[id].child] == d));
            prop_assert!(d < last_depth);
            last_depth = d;
        }
    }

    #[test]
    fn center_root_minimizes_layers(spec in arb_spec()) {
        let net = generators::windowed_dag(&spec);
        let built = build_junction_tree(&net, &JtreeOptions::default());
        let layers_of = |strategy| {
            LayerSchedule::new(&built.tree, &root_tree(&built.tree, strategy)).num_layers()
        };
        let center = layers_of(RootStrategy::Center);
        let first = layers_of(RootStrategy::First);
        let worst = layers_of(RootStrategy::Worst);
        prop_assert!(center <= first, "center {center} > first {first}");
        prop_assert!(center <= worst, "center {center} > worst {worst}");
        // Center achieves ceil(diameter / 2); worst realizes the diameter,
        // so center is at most ceil(worst / 2) per component — globally,
        // allow the +1 slack from mixing components.
        prop_assert!(center <= worst / 2 + 1, "center {center}, worst {worst}");
    }

    #[test]
    fn separators_are_proper_subsets_of_their_endpoints(spec in arb_spec()) {
        let net = generators::windowed_dag(&spec);
        let built = build_junction_tree(&net, &JtreeOptions::default());
        for sep in &built.tree.separators {
            prop_assert!(!sep.vars.is_empty(), "empty separator in a component");
            prop_assert!(built.tree.cliques[sep.a].contains_all(&sep.vars));
            prop_assert!(built.tree.cliques[sep.b].contains_all(&sep.vars));
        }
    }
}
