//! Tests of the junction-tree pipeline over a seeded family of random
//! networks (the build environment has no proptest): every network must
//! yield a tree satisfying the running intersection property, family
//! coverage, and a consistent layer schedule; the center root must never
//! produce more layers than the alternatives.

use fastbn::bayesnet::generators::{self, ArityDist, CptStyle, WindowedDagSpec};
use fastbn::jtree::{build_junction_tree, root_tree, JtreeOptions, LayerSchedule, RootStrategy};
use fastbn::VarId;

/// Deterministic spec family covering the old proptest ranges: 5..60
/// nodes, 1..4 max parents, 2..9 window, 2..5 arity.
fn spec_for(case: u64) -> WindowedDagSpec {
    let nodes = 5 + (case as usize * 11) % 55;
    WindowedDagSpec {
        name: "prop".into(),
        nodes,
        target_arcs: nodes * 3 / 2,
        max_parents: 1 + (case as usize) % 3,
        window: 2 + (case as usize * 5) % 7,
        arity: ArityDist::Uniform {
            min: 2,
            max: 2 + (case as usize * 3) % 3,
        },
        cpt: CptStyle { alpha: 1.0 },
        seed: case * 41 + 3,
    }
}

#[test]
fn junction_tree_invariants_hold() {
    for case in 0..48 {
        let net = generators::windowed_dag(&spec_for(case));
        let built = build_junction_tree(&net, &JtreeOptions::default());
        // Running intersection property.
        assert!(built.tree.verify_running_intersection(), "case {case}");
        // Tree/forest edge count.
        assert!(built.tree.is_forest(), "case {case}");
        // Every CPT family is covered by some clique.
        for v in 0..net.num_vars() {
            let fam = net.dag().family(VarId::from_index(v));
            assert!(
                built.tree.smallest_containing(&fam).is_some(),
                "case {case}"
            );
        }
        // Schedule covers every non-root clique exactly once per pass.
        let sched = &built.schedule;
        let collect_total: usize = sched.collect_layers.iter().map(Vec::len).sum();
        let dist_total: usize = sched.distribute_layers.iter().map(Vec::len).sum();
        assert_eq!(collect_total, sched.num_messages(), "case {case}");
        assert_eq!(dist_total, sched.num_messages(), "case {case}");
        assert_eq!(
            sched.num_messages(),
            built.tree.num_cliques() - built.tree.components.len(),
            "case {case}"
        );
        // Collect layers are deepest-first and each layer is one depth.
        let mut last_depth = usize::MAX;
        for layer in &sched.collect_layers {
            assert!(!layer.is_empty(), "case {case}");
            let d = built.rooted.depth[sched.messages[layer[0]].child];
            assert!(
                layer
                    .iter()
                    .all(|&id| built.rooted.depth[sched.messages[id].child] == d),
                "case {case}"
            );
            assert!(d < last_depth, "case {case}");
            last_depth = d;
        }
    }
}

#[test]
fn center_root_minimizes_layers() {
    for case in 0..48 {
        let net = generators::windowed_dag(&spec_for(case));
        let built = build_junction_tree(&net, &JtreeOptions::default());
        let layers_of = |strategy| {
            LayerSchedule::new(&built.tree, &root_tree(&built.tree, strategy)).num_layers()
        };
        let center = layers_of(RootStrategy::Center);
        let first = layers_of(RootStrategy::First);
        let worst = layers_of(RootStrategy::Worst);
        assert!(
            center <= first,
            "case {case}: center {center} > first {first}"
        );
        assert!(
            center <= worst,
            "case {case}: center {center} > worst {worst}"
        );
        // Center achieves ceil(diameter / 2); worst realizes the diameter,
        // so center is at most ceil(worst / 2) per component — globally,
        // allow the +1 slack from mixing components.
        assert!(
            center <= worst / 2 + 1,
            "case {case}: center {center}, worst {worst}"
        );
    }
}

#[test]
fn separators_are_proper_subsets_of_their_endpoints() {
    for case in 0..48 {
        let net = generators::windowed_dag(&spec_for(case));
        let built = build_junction_tree(&net, &JtreeOptions::default());
        for sep in &built.tree.separators {
            assert!(!sep.vars.is_empty(), "case {case}: empty separator");
            assert!(built.tree.cliques[sep.a].contains_all(&sep.vars));
            assert!(built.tree.cliques[sep.b].contains_all(&sep.vars));
        }
    }
}
