//! Cross-engine / cross-oracle consistency: every engine (at several
//! thread counts) must agree bitwise with Fast-BNI-seq, which in turn
//! must agree with variable elimination and brute force.

use fastbn::bayesnet::{datasets, generators, sampler};
use fastbn::inference::oracle::{brute_force, variable_elimination};
use fastbn::inference::validate::assert_engines_agree;
use fastbn::{Evidence, Solver};

fn cases_for(net: &fastbn::BayesianNetwork, n: usize, seed: u64) -> Vec<Evidence> {
    sampler::generate_cases(net, n, 0.25, seed)
        .into_iter()
        .map(|c| c.evidence)
        .collect()
}

#[test]
fn all_engines_agree_on_classic_networks() {
    for name in ["sprinkler", "asia", "cancer", "student"] {
        let net = datasets::by_name(name).unwrap();
        let cases = cases_for(&net, 8, 42);
        let worst = assert_engines_agree(&net, &cases, &[1, 2, 4], 1e-9);
        assert!(worst <= 1e-9, "{name}: worst JT-vs-VE diff {worst}");
    }
}

#[test]
fn all_engines_agree_on_random_windowed_dags() {
    for seed in 0..3 {
        let spec = generators::WindowedDagSpec {
            nodes: 35,
            target_arcs: 48,
            max_parents: 3,
            window: 5,
            seed,
            ..generators::WindowedDagSpec::new("consistency", 35)
        };
        let net = generators::windowed_dag(&spec);
        let cases = cases_for(&net, 4, seed + 100);
        assert_engines_agree(&net, &cases, &[2], 1e-8);
    }
}

#[test]
fn all_engines_agree_on_polytrees_and_grids() {
    let poly = generators::polytree(40, 3, 5);
    assert_engines_agree(&poly, &cases_for(&poly, 4, 1), &[2], 1e-8);
    let grid = generators::grid(3, 6, 2, 5);
    assert_engines_agree(&grid, &cases_for(&grid, 4, 2), &[2], 1e-8);
}

#[test]
fn seq_jt_matches_brute_force_exactly_enough() {
    // Brute force enumerates the joint — a fully independent path.
    for name in ["sprinkler", "asia", "cancer", "student"] {
        let net = datasets::by_name(name).unwrap();
        let solver = Solver::new(&net);
        let mut session = solver.session();
        for ev in cases_for(&net, 6, 7) {
            let jt = session.posteriors(&ev).unwrap();
            let bf = brute_force::all_posteriors(&net, &ev).unwrap();
            assert!(
                jt.max_abs_diff(&bf) < 1e-10,
                "{name}: JT vs brute force diff {}",
                jt.max_abs_diff(&bf)
            );
            let rel = (jt.prob_evidence - bf.prob_evidence).abs() / bf.prob_evidence;
            assert!(rel < 1e-10, "{name}: P(e) rel err {rel}");
        }
    }
}

#[test]
fn posteriors_respect_d_separation() {
    // If X ⫫ Y | Z structurally, observing X must not change P(Y | Z).
    let net = datasets::asia();
    let d = net.dag();
    let smoke = net.var_id("Smoker").unwrap();
    let asia_v = net.var_id("VisitAsia").unwrap();
    assert!(d.d_separated(asia_v.0, smoke.0, &[]));

    let solver = Solver::new(&net);
    let mut session = solver.session();
    let base = session.posteriors(&Evidence::empty()).unwrap();
    let cond = session
        .posteriors(&Evidence::from_pairs([(asia_v, 0)]))
        .unwrap();
    for (a, b) in base.marginal(smoke).iter().zip(cond.marginal(smoke)) {
        assert!((a - b).abs() < 1e-12, "d-separated var moved: {a} vs {b}");
    }
}

#[test]
fn ve_prob_evidence_decreases_with_more_findings() {
    // P(e1, e2) ≤ P(e1): adding evidence can only lower the probability.
    let net = datasets::asia();
    let dysp = net.var_id("Dyspnea").unwrap();
    let smoke = net.var_id("Smoker").unwrap();
    let p1 = variable_elimination::prob_evidence(&net, &Evidence::from_pairs([(dysp, 0)])).unwrap();
    let p2 =
        variable_elimination::prob_evidence(&net, &Evidence::from_pairs([(dysp, 0), (smoke, 0)]))
            .unwrap();
    assert!(p2 <= p1 + 1e-15, "{p2} > {p1}");
}
