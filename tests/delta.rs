//! Differential edit-script harness for incremental re-propagation.
//!
//! Seeded random scripts of evidence edits — add / change / retract a
//! hard finding, set / retract a likelihood — run against a
//! [`LiveSession`], and after **every** step the session's
//! `prob_evidence`, full posteriors, and targeted marginals must be
//! **bitwise** equal to a from-scratch query carrying the session's
//! current evidence, for every engine at every thread count. Any
//! shortcut the incremental path takes (saved-message replay, lazy
//! distribute, rebuild-from-initial retraction) that is not exactly the
//! from-scratch arithmetic shows up here as a flipped bit.

use std::sync::Arc;

use fastbn::bayesnet::datasets;
use fastbn::{
    BayesianNetwork, EngineKind, EvidenceDelta, InferenceError, LikelihoodDefect, Posteriors,
    Prepared, Query, Session, Solver, VarId,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One from-scratch checker per (engine, threads): sequential engines at
/// one thread, parallel engines at 1, 4 and 8.
struct Checkers {
    solvers: Vec<(String, Solver)>,
}

impl Checkers {
    fn new(net: &BayesianNetwork) -> Self {
        let prepared = Arc::new(Prepared::new(net, &Default::default()));
        let mut solvers = Vec::new();
        for kind in EngineKind::all() {
            let threads: &[usize] = if EngineKind::parallel().contains(&kind) {
                &[1, 4, 8]
            } else {
                &[1]
            };
            for &t in threads {
                solvers.push((
                    format!("{kind} t={t}"),
                    Solver::from_prepared(prepared.clone())
                        .engine(kind)
                        .threads(t)
                        .build(),
                ));
            }
        }
        Checkers { solvers }
    }

    fn sessions(&self) -> Vec<(&str, Session<'_>)> {
        self.solvers
            .iter()
            .map(|(label, s)| (label.as_str(), s.session()))
            .collect()
    }
}

fn assert_bitwise(label: &str, step: usize, live: &Posteriors, scratch: &Posteriors) {
    assert_eq!(
        live.prob_evidence.to_bits(),
        scratch.prob_evidence.to_bits(),
        "{label} step {step}: P(e) bits differ ({} vs {})",
        live.prob_evidence,
        scratch.prob_evidence,
    );
    for (v, (a, b)) in live.marginals().iter().zip(scratch.marginals()).enumerate() {
        assert_eq!(a.len(), b.len(), "{label} step {step}: var {v} length");
        for (s, (x, y)) in a.iter().zip(b).enumerate() {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "{label} step {step}: var {v} state {s}: {x} vs {y}",
            );
        }
    }
}

/// Draws the next random edit. Observes dominate (the streaming case);
/// retractions and likelihood edits keep the rebuild-from-initial path
/// and the virtual replay honest. Likelihood vectors get occasional
/// exact zeros to drive the `0/0 = 0` convention through saved-message
/// replay.
fn random_edit(net: &BayesianNetwork, rng: &mut StdRng) -> EvidenceDelta {
    let var = VarId::from_index(rng.gen_range(0..net.num_vars()));
    let card = net.cardinality(var);
    match rng.gen_range(0..10usize) {
        0..=3 => EvidenceDelta::observe(var, rng.gen_range(0..card)),
        4..=5 => EvidenceDelta::retract(var),
        6..=8 => {
            let likelihood: Vec<f64> = (0..card)
                .map(|_| {
                    if rng.gen_bool(0.15) {
                        0.0
                    } else {
                        rng.gen::<f64>().max(1e-3)
                    }
                })
                .collect();
            if likelihood.iter().all(|&p| p == 0.0) {
                // An all-zero draw would be rejected; observe instead.
                EvidenceDelta::observe(var, rng.gen_range(0..card))
            } else {
                EvidenceDelta::likelihood(var, likelihood)
            }
        }
        _ => EvidenceDelta::retract_likelihood(var),
    }
}

/// Two deterministic, sorted, deduplicated target variables.
fn targets_of(net: &BayesianNetwork) -> Vec<VarId> {
    let n = net.num_vars();
    let mut t = vec![VarId::from_index(0), VarId::from_index(n / 2)];
    t.dedup();
    t
}

/// The harness: `steps` seeded edits on one live session; after each,
/// every engine/thread checker re-solves from scratch and must agree
/// bit-for-bit on `P(e)`, all posteriors, and targeted marginals.
fn run_script(net: &BayesianNetwork, seed: u64, steps: usize) {
    let checkers = Checkers::new(net);
    let mut sessions = checkers.sessions();
    let live_solver = Arc::new(Solver::new(net));
    let mut live = live_solver.live_session();
    let mut rng = StdRng::seed_from_u64(seed);
    let targets = targets_of(net);

    for step in 0..steps {
        let edit = random_edit(net, &mut rng);
        live.apply(edit).unwrap();
        let query = Query::new()
            .evidence(live.evidence().clone())
            .virtual_evidence(live.virtual_evidence());
        let targeted_query = query.clone().targets(targets.iter().copied());

        // Targeted read first: it materializes only part of the tree, and
        // the later full read must still see identical bits.
        let live_targeted = live.posteriors_for(&targets);
        let live_full = live.posteriors();
        let live_prob = live.prob_evidence();

        for (label, session) in &mut sessions {
            let scratch = session.run(&query).map(|r| r.into_posteriors().unwrap());
            match (&live_full, &scratch) {
                (Ok(a), Ok(b)) => {
                    assert_bitwise(label, step, a, b);
                    assert_eq!(
                        live_prob.to_bits(),
                        b.prob_evidence.to_bits(),
                        "{label} step {step}: saved-root P(e)"
                    );
                }
                (Err(ea), Err(eb)) => assert_eq!(ea, eb, "{label} step {step}"),
                (a, b) => panic!("{label} step {step}: live {a:?} but scratch {b:?}"),
            }

            let scratch_targeted = session
                .run(&targeted_query)
                .map(|r| r.into_posteriors().unwrap());
            match (&live_targeted, &scratch_targeted) {
                (Ok(a), Ok(b)) => {
                    assert_eq!(a.prob_evidence.to_bits(), b.prob_evidence.to_bits());
                    for &t in &targets {
                        for (x, y) in a.marginal(t).iter().zip(b.marginal(t)) {
                            assert_eq!(
                                x.to_bits(),
                                y.to_bits(),
                                "{label} step {step}: targeted {t:?}"
                            );
                        }
                    }
                }
                (Err(ea), Err(eb)) => assert_eq!(ea, eb, "{label} step {step} targeted"),
                (a, b) => panic!("{label} step {step} targeted: {a:?} vs {b:?}"),
            }
        }
    }
}

#[test]
fn edit_script_differential_asia() {
    run_script(&datasets::asia(), 0xA51A, 40);
}

#[test]
fn edit_script_differential_sprinkler() {
    run_script(&datasets::sprinkler(), 0x5931, 40);
}

#[test]
fn edit_script_differential_hailfinder() {
    let workload = fastbn_bench::workloads::workload_by_name("hailfinder").unwrap();
    run_script(&workload.build(), 0x4A11, 12);
}

#[test]
fn marginal_into_matches_full_posteriors_under_edits() {
    let net = datasets::asia();
    let solver = Arc::new(Solver::new(&net));
    let mut live = solver.live_session();
    let mut rng = StdRng::seed_from_u64(0x0517);
    let mut buf = vec![0.0; 2]; // every Asia variable is binary
    for _ in 0..25 {
        live.apply(random_edit(&net, &mut rng)).unwrap();
        for v in 0..net.num_vars() {
            let var = VarId::from_index(v);
            let single = live.marginal_into(var, &mut buf);
            let full = live.posteriors();
            match (&single, &full) {
                (Ok(()), Ok(p)) => {
                    for (x, y) in buf.iter().zip(p.marginal(var)) {
                        assert_eq!(x.to_bits(), y.to_bits(), "{var:?}");
                    }
                }
                (Err(ea), Err(eb)) => assert_eq!(ea, eb),
                (a, b) => panic!("{var:?}: marginal_into {a:?} but posteriors {b:?}"),
            }
        }
    }
}

/// Error recovery: a malformed edit mid-script must surface its typed
/// error, leave the session fully usable, and later edits/queries must
/// stay bitwise correct — the live-session mirror of
/// `session_reuse.rs`.
#[test]
fn malformed_edit_mid_script_leaves_session_usable() {
    let net = datasets::asia();
    let solver = Arc::new(Solver::new(&net));
    let mut live = solver.live_session();
    let mut scratch = solver.session();
    let dysp = net.var_id("Dyspnea").unwrap();
    let xray = net.var_id("XRay").unwrap();
    let smoke = net.var_id("Smoker").unwrap();

    live.apply(EvidenceDelta::observe(dysp, 0)).unwrap();

    // Every malformed-edit shape: typed error, no state change.
    let before = live.posteriors().unwrap();
    assert_eq!(
        live.apply(EvidenceDelta::likelihood(smoke, vec![0.0, 0.0]))
            .unwrap_err(),
        InferenceError::MalformedLikelihood {
            var: smoke.index(),
            defect: LikelihoodDefect::AllZero,
        }
    );
    assert_eq!(
        live.apply(EvidenceDelta::likelihood(smoke, vec![0.5, -0.1]))
            .unwrap_err(),
        InferenceError::MalformedLikelihood {
            var: smoke.index(),
            defect: LikelihoodDefect::Negative,
        }
    );
    assert_eq!(
        live.apply(EvidenceDelta::likelihood(smoke, vec![f64::NAN, 1.0]))
            .unwrap_err(),
        InferenceError::MalformedLikelihood {
            var: smoke.index(),
            defect: LikelihoodDefect::NonFinite,
        }
    );
    assert_eq!(
        live.apply(EvidenceDelta::likelihood(smoke, vec![0.1, 0.2, 0.3]))
            .unwrap_err(),
        InferenceError::InvalidLikelihood {
            var: smoke.index(),
            expected: 2,
            got: 3,
        }
    );
    assert!(matches!(
        live.apply(EvidenceDelta::observe(VarId(999), 0))
            .unwrap_err(),
        InferenceError::InvalidEvidence(_)
    ));
    assert!(matches!(
        live.apply(EvidenceDelta::observe(dysp, 5)).unwrap_err(),
        InferenceError::InvalidEvidence(_)
    ));
    assert!(matches!(
        live.apply(EvidenceDelta::retract(VarId(999))).unwrap_err(),
        InferenceError::InvalidEvidence(_)
    ));
    assert_eq!(
        live.evidence().len(),
        1,
        "failed edits must not change evidence"
    );
    assert!(live.likelihood(smoke).is_none());

    // The session is untouched: same bits as before the failures.
    let after = live.posteriors().unwrap();
    assert_eq!(before.max_abs_diff(&after), 0.0);

    // And still fully live: subsequent good edits stay bitwise equal to
    // from-scratch queries.
    live.apply(EvidenceDelta::likelihood(smoke, vec![0.7, 0.3]))
        .unwrap();
    live.apply(EvidenceDelta::observe(xray, 1)).unwrap();
    live.apply(EvidenceDelta::retract(dysp)).unwrap();
    let expected = scratch
        .run(
            &Query::new()
                .evidence(live.evidence().clone())
                .virtual_evidence(live.virtual_evidence()),
        )
        .unwrap()
        .into_posteriors()
        .unwrap();
    assert_bitwise("post-error", 0, &live.posteriors().unwrap(), &expected);
}

/// The doc-promised equivalence: a `LiveSession` after `apply_all` over
/// any script equals a fresh `LiveSession` built over the same solver
/// with the same final findings — order of arrival must not matter.
#[test]
fn edit_order_does_not_matter() {
    let net = datasets::student();
    let solver = Arc::new(Solver::new(&net));
    let grade = net.var_id("Grade").unwrap();
    let sat = net.var_id("SAT").unwrap();
    let diff = net.var_id("Difficulty").unwrap();

    let mut a = solver.live_session();
    a.apply_all([
        EvidenceDelta::observe(grade, 1),
        EvidenceDelta::likelihood(sat, vec![0.9, 0.2]),
        EvidenceDelta::observe(diff, 0),
        EvidenceDelta::observe(grade, 2), // change after the fact
    ])
    .unwrap();

    let mut b = solver.live_session();
    b.apply_all([
        EvidenceDelta::observe(diff, 0),
        EvidenceDelta::observe(grade, 2),
        EvidenceDelta::likelihood(sat, vec![0.9, 0.2]),
    ])
    .unwrap();

    let pa = a.posteriors().unwrap();
    let pb = b.posteriors().unwrap();
    assert_eq!(pa.prob_evidence.to_bits(), pb.prob_evidence.to_bits());
    assert_eq!(pa.max_abs_diff(&pb), 0.0);
}
