//! `OwnedSession` guarantees: it is `Send + 'static` (movable into
//! spawned threads and task runtimes), draws scratch from the same pool
//! as borrowed sessions, and — run from another thread — produces
//! posteriors **bit-identical** to a borrowed `Session` on every engine.

use std::sync::Arc;

use fastbn::bayesnet::{datasets, sampler};
use fastbn::{
    EngineKind, InferenceError, OwnedSession, Prepared, Query, QueryBatch, QueryResult, Solver,
};

fn assert_send<T: Send + 'static>() {}

#[test]
fn owned_session_is_send_and_static() {
    assert_send::<OwnedSession>();
    // The solver handle it carries must itself be shareable.
    assert_send::<Arc<Solver>>();
}

/// A mixed query set over Asia: sampled-evidence marginals, a targeted
/// query, virtual evidence, MPE, and two failing requests (impossible
/// evidence; malformed likelihood).
fn mixed_queries(net: &fastbn::BayesianNetwork) -> Vec<Query> {
    let dysp = net.var_id("Dyspnea").unwrap();
    let lung = net.var_id("LungCancer").unwrap();
    let xray = net.var_id("XRay").unwrap();
    let tub = net.var_id("Tuberculosis").unwrap();
    let either = net.var_id("TbOrCa").unwrap();
    let mut queries: Vec<Query> = sampler::generate_cases(net, 12, 0.25, 11)
        .into_iter()
        .map(|c| Query::new().evidence(c.evidence))
        .collect();
    queries.push(Query::new().observe(dysp, 0).targets([lung, tub]));
    queries.push(Query::new().likelihood(xray, vec![0.8, 0.2]));
    queries.push(Query::new().observe(dysp, 0).mpe());
    queries.push(Query::new().observe(tub, 0).observe(either, 1)); // P(e) = 0
    queries.push(Query::new().likelihood(xray, vec![0.0, 0.0])); // malformed
    queries
}

fn assert_identical(
    a: &[Result<QueryResult, InferenceError>],
    b: &[Result<QueryResult, InferenceError>],
    label: &str,
) {
    assert_eq!(a.len(), b.len(), "{label}: length mismatch");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(x, y, "{label}: slot {i} differs");
        if let (Ok(QueryResult::Marginals(p)), Ok(QueryResult::Marginals(q))) = (x, y) {
            assert_eq!(p.max_abs_diff(q), 0.0, "{label}: slot {i} not bitwise");
            assert_eq!(p.prob_evidence.to_bits(), q.prob_evidence.to_bits());
        }
    }
}

#[test]
fn owned_session_on_a_spawned_thread_matches_borrowed_for_every_engine() {
    let net = datasets::asia();
    let prepared = Arc::new(Prepared::new(&net, &Default::default()));
    let queries = mixed_queries(&net);
    for kind in EngineKind::all() {
        let solver = Arc::new(
            Solver::from_prepared(prepared.clone())
                .engine(kind)
                .threads(2)
                .build(),
        );
        // Oracle: borrowed session on this thread, one query at a time.
        let mut session = solver.session();
        let expected: Vec<_> = queries.iter().map(|q| session.run(q)).collect();
        drop(session);
        // Candidate: owned session *moved into* a spawned thread.
        let mut owned = Arc::clone(&solver).into_session();
        let thread_queries = queries.clone();
        let got = std::thread::spawn(move || {
            thread_queries
                .iter()
                .map(|q| owned.run(q))
                .collect::<Vec<_>>()
        })
        .join()
        .expect("owned-session thread panicked");
        assert_identical(&expected, &got, &format!("{kind:?} run"));
        // And the batch entry point, also from a spawned thread.
        let batch = QueryBatch::from(queries.clone());
        let mut owned = Arc::clone(&solver).into_session();
        let got_batch = std::thread::spawn(move || owned.run_batch(&batch))
            .join()
            .expect("owned-session batch thread panicked");
        assert_identical(&expected, &got_batch, &format!("{kind:?} run_batch"));
    }
}

#[test]
fn many_owned_sessions_share_one_scratch_pool() {
    let net = datasets::asia();
    let solver = Arc::new(Solver::new(&net));
    let ev = fastbn::Evidence::empty();
    let expected = solver.posteriors(&ev).unwrap();
    let workers: Vec<_> = (0..6)
        .map(|_| {
            let mut session = Arc::clone(&solver).into_session();
            let ev = ev.clone();
            std::thread::spawn(move || {
                let mut last = session.posteriors(&ev).unwrap();
                for _ in 0..9 {
                    let got = session.posteriors(&ev).unwrap();
                    assert_eq!(got.max_abs_diff(&last), 0.0, "bitwise repeatable");
                    last = got;
                }
                last
            })
        })
        .collect();
    for worker in workers {
        let got = worker.join().unwrap();
        assert_eq!(expected.max_abs_diff(&got), 0.0, "bitwise across threads");
    }
    assert!(
        solver.pooled_states() <= 7,
        "pool bounded by peak concurrency (6 owned sessions + the one-shot)"
    );
}

#[test]
fn owned_session_can_outlive_the_scope_that_made_it() {
    let net = datasets::sprinkler();
    let wet = net.var_id("WetGrass").unwrap();
    let rain = net.var_id("Rain").unwrap();
    // The session (and the solver Arc inside it) escapes the block.
    let mut session = {
        let solver = Arc::new(Solver::builder(&net).engine(EngineKind::Seq).build());
        OwnedSession::new(solver)
    };
    let result = session
        .run(&Query::new().observe(wet, 0).targets([rain]))
        .unwrap();
    let posteriors = result.posteriors().unwrap();
    assert!((posteriors.marginal(rain)[0] - 0.7079).abs() < 1e-3);
}
