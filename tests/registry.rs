//! The multi-model registry's contract, per the acceptance criteria:
//!
//! * **bit-identity** — every query routed through
//!   `Registry`/`RoutedServer` (models sharing one worker pool, mixed
//!   windows, concurrent submitters) is bitwise equal to the same
//!   query on a standalone single-model `Solver` of the same engine
//!   and width, across all engines × threads {1, 4, 8} on three
//!   networks;
//! * **hot unload isolation** — removing (or evicting) one model
//!   mid-traffic never perturbs in-flight or subsequent queries on the
//!   surviving models, and the removed model's in-flight queries still
//!   complete (they co-own the solver);
//! * **typed routing errors** — submitting to an unknown model id
//!   returns `SubmitErrorKind::UnknownModel` with the query handed
//!   back;
//! * **capacity bounds** — LRU eviction touches only *idle* models;
//!   busy ones refuse with `RegistryError::Full`;
//! * **per-model stats** — the `model_stats` rows each satisfy the
//!   drain invariant `submitted == completed + cancelled` and sum to
//!   the global counters.

use std::sync::Arc;
use std::time::Duration;

use fastbn::bayesnet::{datasets, sampler};
use fastbn::{
    BayesianNetwork, EngineKind, InferenceError, ModelStats, Prepared, Query, QueryResult,
    Registry, RegistryError, RoutedServer, ServeError, Server, Solver, SubmitErrorKind,
};
use fastbn_bench::workloads::workload_by_name;

/// A mixed query stream for any network: sampled hard evidence plus a
/// targeted marginal and an MPE request.
fn mixed_queries(net: &BayesianNetwork, n_sampled: usize, seed: u64) -> Vec<Query> {
    let mut queries: Vec<Query> = sampler::generate_cases(net, n_sampled, 0.2, seed)
        .into_iter()
        .map(|c| Query::new().evidence(c.evidence))
        .collect();
    let first = fastbn::VarId(0);
    queries.push(Query::new().targets([first]));
    queries.push(Query::new().mpe());
    queries
}

/// The standalone oracle: one borrowed session on a private solver,
/// one query at a time, in input order.
fn oracle(solver: &Solver, queries: &[Query]) -> Vec<Result<QueryResult, InferenceError>> {
    let mut session = solver.session();
    queries.iter().map(|q| session.run(q)).collect()
}

/// Routed results must match the oracle slot by slot: same `Ok`
/// payloads (bitwise, for marginals), same typed errors.
fn assert_matches_oracle(
    expected: &[Result<QueryResult, InferenceError>],
    got: &[Result<QueryResult, ServeError>],
    label: &str,
) {
    assert_eq!(expected.len(), got.len(), "{label}: length mismatch");
    for (i, (want, have)) in expected.iter().zip(got).enumerate() {
        match (want, have) {
            (Ok(w), Ok(h)) => {
                assert_eq!(w, h, "{label}: slot {i} differs");
                if let (QueryResult::Marginals(p), QueryResult::Marginals(q)) = (w, h) {
                    assert_eq!(p.max_abs_diff(q), 0.0, "{label}: slot {i} not bitwise");
                    assert_eq!(p.prob_evidence.to_bits(), q.prob_evidence.to_bits());
                }
            }
            (Err(w), Err(ServeError::Inference(h))) => {
                assert_eq!(w, h, "{label}: slot {i} error differs");
            }
            _ => panic!("{label}: slot {i} Ok/Err shape differs: {want:?} vs {have:?}"),
        }
    }
}

/// The three test networks with shared `Prepared` structures and their
/// per-model query streams.
fn fixtures() -> Vec<(&'static str, Arc<Prepared>, Vec<Query>)> {
    let asia = datasets::asia();
    let sprinkler = datasets::sprinkler();
    let hailfinder = workload_by_name("hailfinder")
        .expect("bench workload exists")
        .build();
    let mut fixtures = Vec::new();
    for (name, net, sampled, seed) in [
        ("asia", &asia, 6usize, 11u64),
        ("sprinkler", &sprinkler, 6, 12),
        ("hailfinder", &hailfinder, 3, 13),
    ] {
        let prepared = Arc::new(Prepared::new(net, &Default::default()));
        let queries = mixed_queries(net, sampled, seed);
        fixtures.push((name, prepared, queries));
    }
    fixtures
}

/// Registers one solver per fixture, all compiled onto the registry's
/// shared pool.
fn fill_registry(
    registry: &Registry,
    fixtures: &[(&'static str, Arc<Prepared>, Vec<Query>)],
    kind: EngineKind,
) {
    for (name, prepared, _) in fixtures {
        let solver = Solver::from_prepared(Arc::clone(prepared))
            .engine(kind)
            .pool(registry.pool_handle())
            .build();
        registry
            .insert(*name, Arc::new(solver))
            .expect("unbounded registry always has room");
    }
}

#[test]
fn routed_traffic_matches_standalone_solvers_for_every_engine_and_width() {
    let fixtures = fixtures();
    // The interleaved mixed-traffic stream: (model, query index) pairs
    // round-robin across the models so every window sees several.
    let stream: Vec<(usize, usize)> = {
        let mut stream = Vec::new();
        let longest = fixtures.iter().map(|(_, _, q)| q.len()).max().unwrap();
        for qi in 0..longest {
            for (mi, (_, _, queries)) in fixtures.iter().enumerate() {
                if qi < queries.len() {
                    stream.push((mi, qi));
                }
            }
        }
        stream
    };
    let submitters = 3;
    for kind in EngineKind::all() {
        for threads in [1usize, 4, 8] {
            // The standalone oracle: each model alone on a private
            // solver of the same engine and width.
            let expected: Vec<Vec<Result<QueryResult, InferenceError>>> = fixtures
                .iter()
                .map(|(_, prepared, queries)| {
                    let solo = Solver::from_prepared(Arc::clone(prepared))
                        .engine(kind)
                        .threads(threads)
                        .build();
                    oracle(&solo, queries)
                })
                .collect();
            // The routed stack: one shared pool of the same width.
            let registry = Arc::new(Registry::builder().threads(threads).build());
            fill_registry(&registry, &fixtures, kind);
            let server = RoutedServer::builder(Arc::clone(&registry))
                .workers(2)
                .max_batch(4)
                .max_delay(Duration::from_micros(100))
                .build();
            let label = format!("{kind:?} t={threads}");
            let mut got: Vec<Vec<Option<Result<QueryResult, ServeError>>>> = fixtures
                .iter()
                .map(|(_, _, queries)| vec![None; queries.len()])
                .collect();
            let collected: Vec<(usize, usize, Result<QueryResult, ServeError>)> =
                std::thread::scope(|scope| {
                    let handles: Vec<_> = (0..submitters)
                        .map(|s| {
                            let server = &server;
                            let stream = &stream;
                            let fixtures = &fixtures;
                            scope.spawn(move || {
                                let mut mine = Vec::new();
                                for &(mi, qi) in stream.iter().skip(s).step_by(submitters) {
                                    let (name, _, queries) = &fixtures[mi];
                                    let pending = server
                                        .submit(name, queries[qi].clone())
                                        .expect("model resident, server accepting");
                                    mine.push((mi, qi, pending.wait()));
                                }
                                mine
                            })
                        })
                        .collect();
                    handles
                        .into_iter()
                        .flat_map(|h| h.join().expect("submitter panicked"))
                        .collect()
                });
            for (mi, qi, result) in collected {
                got[mi][qi] = Some(result);
            }
            for (mi, (name, _, _)) in fixtures.iter().enumerate() {
                let answers: Vec<_> = got[mi]
                    .drain(..)
                    .map(|slot| slot.expect("every slot answered"))
                    .collect();
                assert_matches_oracle(&expected[mi], &answers, &format!("{label} {name}"));
            }
            server.shutdown();
            let stats = server.stats();
            assert_eq!(stats.submitted, stream.len() as u64, "{label}");
            assert_eq!(stats.completed, stream.len() as u64, "{label}");
            assert_eq!(stats.cancelled, 0, "{label}");
            assert_eq!(stats.worker_panics, 0, "{label}");
            // Per-model accounting sums to the global counters.
            let per_model = server.model_stats();
            assert_eq!(per_model.len(), fixtures.len(), "{label}");
            for row in &per_model {
                assert_eq!(row.submitted, row.completed + row.cancelled, "{label}");
            }
            let summed: u64 = per_model.iter().map(|m| m.submitted).sum();
            assert_eq!(summed, stats.submitted, "{label}");
        }
    }
}

#[test]
fn hot_unload_mid_traffic_never_perturbs_survivors() {
    // A slow model (diabetes: several ms per query) next to fast ones,
    // one worker — so the removal below lands while the slow model's
    // queries are queued or in flight.
    let diabetes = workload_by_name("diabetes")
        .expect("bench workload exists")
        .build();
    let asia = datasets::asia();
    let slow = Arc::new(Solver::new(&diabetes));
    let fast = Arc::new(Solver::new(&asia));
    let slow_queries = vec![Query::new(), Query::new().mpe()];
    let fast_queries = mixed_queries(&asia, 6, 7);
    let expected_slow = oracle(&slow, &slow_queries);
    let expected_fast = oracle(&fast, &fast_queries);

    let registry = Arc::new(Registry::new());
    registry.insert("diabetes", Arc::clone(&slow)).unwrap();
    registry.insert("asia", Arc::clone(&fast)).unwrap();
    drop((slow, fast)); // registry + traffic hold the only references
    let server = RoutedServer::builder(Arc::clone(&registry))
        .workers(1)
        .max_batch(2)
        .max_delay(Duration::ZERO)
        .queue_capacity(32)
        .build();

    // Accept slow-model traffic first, then unload it while those
    // requests are still queued behind / inside the single worker.
    let slow_pending: Vec<_> = slow_queries
        .iter()
        .map(|q| server.submit("diabetes", q.clone()).expect("accepting"))
        .collect();
    let removed = registry.remove("diabetes").expect("was resident");
    assert!(!registry.contains("diabetes"));

    // Subsequent submissions to the removed id: typed error, query
    // handed back — while the survivors keep accepting.
    let rejected = server
        .submit("diabetes", slow_queries[0].clone())
        .expect_err("unloaded model must reject");
    assert_eq!(rejected.kind(), SubmitErrorKind::UnknownModel);
    assert_eq!(rejected.model(), "diabetes");
    assert_eq!(rejected.into_query(), slow_queries[0]);

    let fast_pending: Vec<_> = fast_queries
        .iter()
        .map(|q| {
            server
                .submit("asia", q.clone())
                .expect("survivor accepting")
        })
        .collect();

    // Every request accepted before the unload completes, bitwise.
    let got_slow: Vec<_> = slow_pending.into_iter().map(|p| p.wait()).collect();
    assert_matches_oracle(&expected_slow, &got_slow, "unloaded model's in-flight");
    let got_fast: Vec<_> = fast_pending.into_iter().map(|p| p.wait()).collect();
    assert_matches_oracle(&expected_fast, &got_fast, "survivor");

    server.shutdown();
    // With the traffic drained and the registry entry gone, our handle
    // is the last reference — the unloaded model's memory is actually
    // reclaimable (nothing in the serving stack squirreled it away).
    assert_eq!(Arc::strong_count(&removed), 1, "no lingering references");
    let stats = server.stats();
    assert_eq!(stats.submitted, stats.completed, "all accepted work done");
}

#[test]
fn unknown_model_submissions_fail_typed_with_query_returned() {
    let registry = Arc::new(Registry::new());
    registry
        .insert("known", Arc::new(Solver::new(&datasets::sprinkler())))
        .unwrap();
    let server = RoutedServer::new(Arc::clone(&registry));
    let query = Query::new().observe(fastbn::VarId(0), 1);
    for attempt in 0..2 {
        let err = if attempt == 0 {
            server.submit("never-loaded", query.clone()).unwrap_err()
        } else {
            server
                .try_submit("never-loaded", query.clone())
                .unwrap_err()
        };
        assert_eq!(err.kind(), SubmitErrorKind::UnknownModel);
        assert_eq!(err.model(), "never-loaded");
        assert!(err.to_string().contains("never-loaded"));
        assert_eq!(err.into_query(), query, "query handed back intact");
    }
    // Unroutable submissions are never accepted, so they must not
    // appear in the accounting.
    assert_eq!(server.stats().submitted, 0);
    assert!(server.model_stats().is_empty());
    assert!(server.submit("known", Query::new()).is_ok());
    server.shutdown();
}

#[test]
fn eviction_only_touches_idle_models() {
    let diabetes = workload_by_name("diabetes")
        .expect("bench workload exists")
        .build();
    let registry = Arc::new(Registry::builder().capacity(2).build());
    registry
        .insert("slow", Arc::new(Solver::new(&diabetes)))
        .unwrap();
    registry
        .insert("idle", Arc::new(Solver::new(&datasets::asia())))
        .unwrap();
    let server = RoutedServer::builder(Arc::clone(&registry))
        .workers(1)
        .max_batch(1)
        .max_delay(Duration::ZERO)
        .build();
    // The accepted request co-owns "slow" from admission on, so the
    // capacity-pressured insert below must evict "idle" instead —
    // LRU order alone would pick "slow" (inserted first, never got).
    let pending = server.submit("slow", Query::new()).expect("accepting");
    registry
        .insert("newcomer", Arc::new(Solver::new(&datasets::cancer())))
        .expect("an idle model is evictable");
    assert!(registry.contains("slow"), "busy model survives");
    assert!(registry.contains("newcomer"));
    assert!(!registry.contains("idle"), "idle LRU model evicted");
    assert!(pending.wait().is_ok(), "in-flight work unaffected");

    // Pin both residents: nothing is idle, inserts must refuse rather
    // than evict work out from under a holder.
    let _slow = registry.get("slow").unwrap();
    let _newcomer = registry.get("newcomer").unwrap();
    let err = registry
        .insert("fourth", Arc::new(Solver::new(&datasets::student())))
        .unwrap_err();
    assert_eq!(err, RegistryError::Full { capacity: 2 });
    server.shutdown();
}

#[test]
fn per_model_stats_hold_the_drain_invariant_under_cancellation() {
    let registry = Arc::new(Registry::new());
    for (id, net) in [
        ("asia", datasets::asia()),
        ("sprinkler", datasets::sprinkler()),
        ("cancer", datasets::cancer()),
    ] {
        registry.insert(id, Arc::new(Solver::new(&net))).unwrap();
    }
    let server = RoutedServer::builder(Arc::clone(&registry))
        .workers(2)
        .max_batch(4)
        .max_delay(Duration::from_micros(100))
        .queue_capacity(8)
        .build();
    let models = ["asia", "sprinkler", "cancer"];
    std::thread::scope(|scope| {
        for t in 0..4usize {
            let server = &server;
            scope.spawn(move || {
                for i in 0..120usize {
                    let model = models[(t + i) % models.len()];
                    let pending = match server.submit(model, Query::new()) {
                        Ok(p) => p,
                        Err(_) => break, // only possible post-shutdown
                    };
                    match (t + i) % 4 {
                        0 => drop(pending), // cancel, often while queued
                        1 => {
                            std::thread::yield_now();
                            drop(pending); // often between dequeue and delivery
                        }
                        _ => {
                            pending.wait().expect("empty query completes");
                        }
                    }
                }
            });
        }
    });
    server.shutdown();
    let stats = server.stats();
    assert_eq!(stats.worker_panics, 0);
    assert_eq!(
        stats.completed + stats.cancelled,
        stats.submitted,
        "global drain invariant: {stats:?}"
    );
    let per_model = server.model_stats();
    assert_eq!(per_model.len(), models.len());
    for row in &per_model {
        assert!(row.submitted > 0, "every model saw traffic: {row:?}");
        assert_eq!(
            row.completed + row.cancelled,
            row.submitted,
            "per-model drain invariant: {row:?}"
        );
        assert_eq!(server.model_stats_for(&row.model).as_ref(), Some(row));
    }
    let sum = |f: fn(&ModelStats) -> u64| per_model.iter().map(f).sum::<u64>();
    assert_eq!(sum(|m| m.submitted), stats.submitted, "rows sum to global");
    assert_eq!(sum(|m| m.completed), stats.completed);
    assert_eq!(sum(|m| m.cancelled), stats.cancelled);
    assert_eq!(sum(|m| m.dedups), stats.dedups);
    assert_eq!(sum(|m| m.batches), stats.batches);
}

#[test]
fn in_window_dedup_never_crosses_models() {
    // Two models, identical canonical queries (`Query::new()` on both):
    // a full window must compute one slot per *model*, never share
    // across them, even though the keys are equal.
    let registry = Arc::new(Registry::new());
    registry
        .insert("a", Arc::new(Solver::new(&datasets::asia())))
        .unwrap();
    registry
        .insert("b", Arc::new(Solver::new(&datasets::sprinkler())))
        .unwrap();
    let expected_a = registry.get("a").unwrap().query(&Query::new()).unwrap();
    let expected_b = registry.get("b").unwrap().query(&Query::new()).unwrap();
    assert_ne!(expected_a, expected_b, "the models genuinely differ");
    let server = RoutedServer::builder(Arc::clone(&registry))
        .workers(1)
        .max_batch(6)
        .max_delay(Duration::MAX)
        .build();
    assert!(server.dedup(), "dedup on by default");
    let pending: Vec<_> = (0..6)
        .map(|i| {
            let model = if i % 2 == 0 { "a" } else { "b" };
            (model, server.submit(model, Query::new()).unwrap())
        })
        .collect();
    for (model, p) in pending {
        let got = p.wait().expect("window dispatched");
        let want = if model == "a" {
            &expected_a
        } else {
            &expected_b
        };
        assert_eq!(&got, want, "model {model} answered with its own bits");
    }
    server.shutdown();
    let stats = server.stats();
    assert_eq!(stats.completed, 6);
    assert_eq!(stats.dedups, 4, "2 computed, 4 fanned out within models");
    assert_eq!(stats.batches, 2, "one batch per model in the mixed window");
    let per_model = server.model_stats();
    assert!(per_model.iter().all(|m| m.dedups == 2 && m.batches == 1));
}

#[test]
fn aliased_ids_sharing_one_solver_keep_exact_per_model_stats() {
    // One solver registered under two ids (a routing alias): requests
    // for both land in the same window, but windows group by
    // (id, solver instance), so each id's counters — and its batches —
    // stay its own, preserving the per-row drain invariant.
    let solver = Arc::new(Solver::new(&datasets::asia()));
    let registry = Arc::new(Registry::new());
    registry.insert("prod", Arc::clone(&solver)).unwrap();
    registry.insert("canary", Arc::clone(&solver)).unwrap();
    let server = RoutedServer::builder(Arc::clone(&registry))
        .workers(1)
        .max_batch(4)
        .max_delay(Duration::MAX)
        .build();
    // A full deterministic window: 2 requests per alias, identical
    // queries — dedup must collapse within each alias, never across.
    let pending: Vec<_> = (0..4)
        .map(|i| {
            let model = if i % 2 == 0 { "prod" } else { "canary" };
            server.submit(model, Query::new()).unwrap()
        })
        .collect();
    for p in pending {
        assert!(p.wait().is_ok());
    }
    server.shutdown();
    let stats = server.stats();
    assert_eq!(stats.completed, 4);
    for row in server.model_stats() {
        assert_eq!(row.submitted, 2, "{row:?}");
        assert_eq!(row.completed, 2, "{row:?}");
        assert_eq!(row.cancelled, 0, "{row:?}");
        assert_eq!(row.batches, 1, "each alias dispatches its own batch");
        assert_eq!(row.dedups, 1, "dedup collapses within the alias only");
    }
}

#[test]
fn single_model_server_is_a_one_entry_registry() {
    // The compatibility shim: same machinery, routing pinned to
    // SINGLE_MODEL_ID — visible through the per-model breakdown.
    let server = Server::new(Arc::new(Solver::new(&datasets::sprinkler())));
    let pending = server.submit(Query::new()).unwrap();
    assert!(pending.wait().is_ok());
    server.shutdown();
    let rows = server.model_stats();
    assert_eq!(rows.len(), 1);
    assert_eq!(rows[0].model, fastbn::SINGLE_MODEL_ID);
    assert_eq!(rows[0].submitted, 1);
    assert_eq!(rows[0].completed, 1);
}
