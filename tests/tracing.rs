//! The tracing layer's contract, per the acceptance criteria:
//!
//! * tracing is a **pure observer**: serving with a tracer installed
//!   (every request sampled) returns bit-identical results to serving
//!   without one, for all six engines × inner widths {1, 4, 8}, and the
//!   outer-parallel batch path is bitwise too;
//! * sampled traces form a well-formed tree — one root request span,
//!   every other span parented inside the same trace, engine
//!   collect/distribute phases nested under the compute stage;
//! * `telemetry(false)` forces head sampling off but keeps the
//!   slow-query log **exact** (one entry counted per delivered request
//!   over the threshold);
//! * head sampling is 1-in-N by trace id, and the drain invariant
//!   `submitted == completed + cancelled` holds under stress with
//!   tracing on.

use std::sync::Arc;
use std::time::Duration;

use fastbn::bayesnet::{datasets, sampler};
use fastbn::telemetry::trace::{
    SPAN_COLLECT, SPAN_COMPUTE, SPAN_DELIVERY, SPAN_DISTRIBUTE, SPAN_QUEUE_WAIT, SPAN_REQUEST,
    SPAN_WINDOW,
};
use fastbn::{
    EngineKind, Prepared, Query, QueryBatch, QueryResult, ServeError, Server, Solver, TraceConfig,
    TraceContext, Tracer,
};

/// A tracer that samples every request and slow-logs every request
/// (zero threshold), so one pass exercises the whole recording surface.
fn trace_everything() -> Arc<Tracer> {
    Arc::new(Tracer::new(TraceConfig {
        sample_every: 1,
        slow_threshold: Duration::ZERO,
        ..TraceConfig::default()
    }))
}

/// A mixed query stream over Asia: sampled evidence, targeted,
/// likelihood, MPE, and failing slots.
fn mixed_queries(net: &fastbn::BayesianNetwork, n_sampled: usize) -> Vec<Query> {
    let dysp = net.var_id("Dyspnea").unwrap();
    let lung = net.var_id("LungCancer").unwrap();
    let xray = net.var_id("XRay").unwrap();
    let tub = net.var_id("Tuberculosis").unwrap();
    let either = net.var_id("TbOrCa").unwrap();
    let mut queries: Vec<Query> = sampler::generate_cases(net, n_sampled, 0.25, 61)
        .into_iter()
        .map(|c| Query::new().evidence(c.evidence))
        .collect();
    queries.push(Query::new().observe(dysp, 0).targets([lung, tub]));
    queries.push(Query::new().likelihood(xray, vec![0.8, 0.2]));
    queries.push(Query::new().observe(dysp, 0).mpe());
    queries.push(Query::new().observe(tub, 0).observe(either, 1)); // P(e) = 0
    queries
}

/// Both runs must agree slot by slot, bitwise for marginals.
fn assert_bitwise(
    off: &[Result<QueryResult, ServeError>],
    on: &[Result<QueryResult, ServeError>],
    label: &str,
) {
    assert_eq!(off.len(), on.len(), "{label}: length mismatch");
    for (i, (want, have)) in off.iter().zip(on).enumerate() {
        match (want, have) {
            (Ok(w), Ok(h)) => {
                assert_eq!(w, h, "{label}: slot {i} differs");
                if let (QueryResult::Marginals(p), QueryResult::Marginals(q)) = (w, h) {
                    assert_eq!(p.max_abs_diff(q), 0.0, "{label}: slot {i} not bitwise");
                    assert_eq!(p.prob_evidence.to_bits(), q.prob_evidence.to_bits());
                }
            }
            (Err(w), Err(h)) => assert_eq!(w, h, "{label}: slot {i} error differs"),
            _ => panic!("{label}: slot {i} Ok/Err shape differs"),
        }
    }
}

/// Serves `queries` in input order through a fresh server over
/// `solver`, optionally traced, and returns the per-slot results.
fn serve_all(
    solver: &Arc<Solver>,
    queries: &[Query],
    tracer: Option<Arc<Tracer>>,
) -> Vec<Result<QueryResult, ServeError>> {
    let mut builder = Server::builder(Arc::clone(solver))
        .workers(2)
        .max_batch(4)
        .max_delay(Duration::from_micros(100));
    if let Some(tracer) = tracer {
        builder = builder.tracer(tracer);
    }
    let server = builder.build();
    let pending: Vec<_> = queries
        .iter()
        .map(|q| server.submit(q.clone()).expect("server accepting"))
        .collect();
    let got = pending.into_iter().map(|p| p.wait()).collect();
    server.shutdown();
    got
}

#[test]
fn traced_serving_is_bitwise_identical_for_every_engine_and_width() {
    let net = datasets::asia();
    let prepared = Arc::new(Prepared::new(&net, &Default::default()));
    let queries = mixed_queries(&net, 16); // 20 queries, failing slot included
    for kind in EngineKind::all() {
        for threads in [1usize, 4, 8] {
            let solver = Arc::new(
                Solver::from_prepared(prepared.clone())
                    .engine(kind)
                    .threads(threads)
                    .build(),
            );
            let label = format!("{kind:?} × {threads}");
            let off = serve_all(&solver, &queries, None);
            let tracer = trace_everything();
            let on = serve_all(&solver, &queries, Some(Arc::clone(&tracer)));
            assert_bitwise(&off, &on, &label);
            assert!(
                tracer.spans_recorded() > 0,
                "{label}: tracing on but nothing recorded"
            );
            assert_eq!(
                tracer.slow_total(),
                queries.len() as u64, // errors are deliveries too
                "{label}: slow log must count every delivered request at threshold zero"
            );
        }
    }
}

#[test]
fn traced_outer_batch_path_is_bitwise_identical() {
    let net = datasets::asia();
    let prepared = Arc::new(Prepared::new(&net, &Default::default()));
    let queries = mixed_queries(&net, 28); // 32 queries ≥ any pool width below
    let batch = QueryBatch::from(queries);
    for kind in EngineKind::all() {
        for threads in [1usize, 4, 8] {
            let solver = Solver::from_prepared(prepared.clone())
                .engine(kind)
                .threads(threads)
                .build();
            let label = format!("{kind:?} × {threads}");
            let plain = solver.query_batch(&batch);
            let tracer = trace_everything();
            let ctxs: Vec<Option<TraceContext>> = (0..batch.len())
                .map(|_| {
                    let token = tracer.begin_trace();
                    Some(TraceContext {
                        tracer: Arc::clone(&tracer),
                        trace: token.trace,
                        parent: tracer.next_span(),
                    })
                })
                .collect();
            let traced = solver.query_batch_traced(&batch, &ctxs);
            assert_eq!(plain.len(), traced.len());
            for (i, (want, have)) in plain.iter().zip(&traced).enumerate() {
                match (want, have) {
                    (Ok(w), Ok(h)) => {
                        assert_eq!(w, h, "{label}: slot {i} differs");
                        if let (QueryResult::Marginals(p), QueryResult::Marginals(q)) = (w, h) {
                            assert_eq!(p.max_abs_diff(q), 0.0, "{label}: slot {i} not bitwise");
                        }
                    }
                    (Err(w), Err(h)) => assert_eq!(w, h, "{label}: slot {i} error differs"),
                    _ => panic!("{label}: slot {i} Ok/Err shape differs"),
                }
            }
            // Every successful query recorded its two phase spans.
            let ok = plain.iter().filter(|r| r.is_ok()).count() as u64;
            assert!(
                tracer.spans_recorded() >= 2 * ok,
                "{label}: expected ≥ {} phase spans, saw {}",
                2 * ok,
                tracer.spans_recorded()
            );
        }
    }
}

#[test]
fn sampled_traces_form_well_formed_trees() {
    let net = datasets::asia();
    let solver = Arc::new(
        Solver::builder(&net)
            .engine(EngineKind::Hybrid)
            .threads(2)
            .build(),
    );
    let tracer = trace_everything();
    let queries = mixed_queries(&net, 8);
    serve_all(&solver, &queries, Some(Arc::clone(&tracer)));

    let traces = tracer.recent_traces(16);
    assert!(!traces.is_empty(), "sampling everything must retain traces");
    let mut saw_engine_phase = false;
    for view in &traces {
        let roots: Vec<_> = view.spans.iter().filter(|s| s.parent == 0).collect();
        assert_eq!(
            roots.len(),
            1,
            "trace {} must have exactly one root, got {roots:?}",
            view.trace
        );
        assert_eq!(roots[0].name, SPAN_REQUEST);
        for span in &view.spans {
            assert_eq!(span.trace, view.trace);
            if span.parent != 0 {
                assert!(
                    view.spans.iter().any(|s| s.span == span.parent),
                    "trace {}: span {} orphaned (parent {} missing)",
                    view.trace,
                    span.span,
                    span.parent
                );
            }
        }
        // Stage spans hang off the root; engine phases hang off compute.
        let root = roots[0].span;
        for stage in [SPAN_QUEUE_WAIT, SPAN_WINDOW, SPAN_DELIVERY] {
            if let Some(s) = view.spans.iter().find(|s| s.name == stage) {
                assert_eq!(s.parent, root, "stage spans parent to the request span");
            }
        }
        if let Some(compute) = view.spans.iter().find(|s| s.name == SPAN_COMPUTE) {
            assert_eq!(compute.parent, root);
            for phase in view
                .spans
                .iter()
                .filter(|s| s.name == SPAN_COLLECT || s.name == SPAN_DISTRIBUTE)
            {
                assert_eq!(
                    phase.parent, compute.span,
                    "engine phases nest under compute"
                );
                saw_engine_phase = true;
            }
        }
    }
    assert!(
        saw_engine_phase,
        "at least one retained trace must reach into the engine"
    );
}

#[test]
fn telemetry_off_disables_sampling_but_slow_log_stays_exact() {
    let net = datasets::asia();
    let solver = Arc::new(Solver::new(&net));
    let tracer = trace_everything();
    let server = Server::builder(Arc::clone(&solver))
        .telemetry(false)
        .tracer(Arc::clone(&tracer))
        .build();
    assert!(!server.metrics().is_timing_enabled());
    let pending: Vec<_> = (0..48)
        .map(|_| server.submit(Query::new()).unwrap())
        .collect();
    for p in pending {
        p.wait().unwrap();
    }
    server.shutdown();

    let stats = server.stats();
    assert_eq!(stats.submitted, 48);
    assert_eq!(stats.submitted, stats.completed + stats.cancelled);
    assert_eq!(
        tracer.spans_recorded(),
        0,
        "telemetry(false) must force the sampling rate to zero"
    );
    assert!(tracer.recent_traces(64).is_empty());
    assert_eq!(
        tracer.slow_total(),
        stats.completed,
        "slow-query log is exact even with stage timing off"
    );
    for entry in tracer.slow_entries() {
        assert!(!entry.sampled, "no entry can claim a span tree exists");
        assert!(entry.total_ns > 0);
        assert_eq!(entry.model, fastbn::SINGLE_MODEL_ID);
    }
}

#[test]
fn head_sampling_is_one_in_n_and_stress_keeps_the_drain_invariant() {
    let net = datasets::asia();
    let solver = Arc::new(
        Solver::builder(&net)
            .engine(EngineKind::Hybrid)
            .threads(2)
            .build(),
    );
    let tracer = Arc::new(Tracer::new(TraceConfig {
        sample_every: 4,
        slow_threshold: Duration::ZERO,
        ..TraceConfig::default()
    }));
    let server = Server::builder(Arc::clone(&solver))
        .workers(2)
        .max_batch(4)
        .max_delay(Duration::from_micros(50))
        .tracer(Arc::clone(&tracer))
        .build();
    let submitters = 4;
    let per_thread = 32;
    std::thread::scope(|scope| {
        for s in 0..submitters {
            let server = &server;
            let net = &net;
            scope.spawn(move || {
                let dysp = net.var_id("Dyspnea").unwrap();
                for i in 0..per_thread {
                    let pending = server
                        .submit(Query::new().observe(dysp, (s + i) % 2))
                        .unwrap();
                    if i % 5 == 0 {
                        drop(pending); // cancel a slice of the traffic
                    } else {
                        let _ = pending.wait();
                    }
                }
            });
        }
    });
    server.shutdown();

    let stats = server.stats();
    let total = (submitters * per_thread) as u64;
    assert_eq!(stats.submitted, total);
    assert_eq!(
        stats.submitted,
        stats.completed + stats.cancelled,
        "drain invariant under tracing + cancellation stress"
    );
    // Head sampling: trace ids are minted 1..=total, sampled iff
    // id % 4 == 0 — so at most total/4 traces can ever carry spans.
    let sampled_traces: std::collections::BTreeSet<u64> =
        tracer.recent_spans().iter().map(|s| s.trace).collect();
    assert!(
        sampled_traces.len() as u64 <= total / 4,
        "1-in-4 sampling retained {} traces of {total}",
        sampled_traces.len()
    );
    assert!(
        !sampled_traces.is_empty(),
        "some sampled requests must have completed"
    );
    // The slow log never samples: one entry counted per delivery.
    assert_eq!(tracer.slow_total(), stats.completed);
}
