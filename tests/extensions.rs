//! Integration tests of the extension features (parameter learning and
//! virtual evidence) working together with the inference pipeline.

use fastbn::bayesnet::learn::{fit_parameters, mean_log_likelihood};
use fastbn::bayesnet::{datasets, generators, sampler};
use fastbn::{Evidence, Query, Solver, VarId};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn rows(net: &fastbn::BayesianNetwork, n: usize, seed: u64) -> Vec<Vec<usize>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| sampler::forward_sample(net, &mut rng))
        .collect()
}

#[test]
fn fitted_model_posteriors_approach_truth() {
    let truth = datasets::cancer();
    let fitted = fit_parameters(&truth, &rows(&truth, 80_000, 11), 1.0).unwrap();

    let truth_solver = Solver::new(&truth);
    let fitted_solver = Solver::new(&fitted);
    let smoker = truth.var_id("Smoker").unwrap();
    let ev = Evidence::from_pairs([(smoker, 0)]);
    let a = truth_solver.posteriors(&ev).unwrap();
    let b = fitted_solver.posteriors(&ev).unwrap();
    assert!(
        a.max_abs_diff(&b) < 0.02,
        "fitted posteriors deviate by {}",
        a.max_abs_diff(&b)
    );
}

#[test]
fn learning_works_on_generated_networks() {
    let spec = generators::WindowedDagSpec {
        nodes: 20,
        target_arcs: 28,
        max_parents: 2,
        window: 5,
        seed: 9,
        ..generators::WindowedDagSpec::new("learn-gen", 20)
    };
    let truth = generators::windowed_dag(&spec);
    let train = rows(&truth, 30_000, 12);
    let fitted = fit_parameters(&truth, &train, 1.0).unwrap();
    // Held-out likelihood of the fitted model must be close to the truth's.
    let test = rows(&truth, 5_000, 13);
    let gap = mean_log_likelihood(&truth, &test) - mean_log_likelihood(&fitted, &test);
    assert!(gap.abs() < 0.05, "likelihood gap {gap}");
}

#[test]
fn virtual_evidence_interpolates_between_prior_and_hard() {
    // Increasingly confident likelihoods must move the posterior
    // monotonically from the prior toward the hard-evidence posterior.
    let net = datasets::asia();
    let solver = Solver::new(&net);
    let mut session = solver.session();
    let xray = net.var_id("XRay").unwrap();
    let lung = net.var_id("LungCancer").unwrap();

    let prior = session
        .posteriors(&Evidence::empty())
        .unwrap()
        .marginal(lung)[0];
    let hard = session
        .posteriors(&Evidence::from_pairs([(xray, 0)]))
        .unwrap()
        .marginal(lung)[0];
    let mut last = prior;
    for confidence in [0.55, 0.7, 0.85, 0.99] {
        let post = session
            .run(&Query::new().likelihood(xray, vec![confidence, 1.0 - confidence]))
            .unwrap()
            .into_posteriors()
            .unwrap()
            .marginal(lung)[0];
        assert!(
            post >= last - 1e-12,
            "posterior must rise with confidence: {post} < {last}"
        );
        assert!(post <= hard + 1e-12);
        last = post;
    }
}

#[test]
fn virtual_evidence_combines_with_hard_evidence() {
    let net = datasets::asia();
    let solver = Solver::new(&net);
    let mut session = solver.session();
    let dysp = net.var_id("Dyspnea").unwrap();
    let xray = net.var_id("XRay").unwrap();
    let bronc = net.var_id("Bronchitis").unwrap();

    let hard_only = session
        .posteriors(&Evidence::from_pairs([(dysp, 0)]))
        .unwrap();
    let with_soft = session
        .run(
            &Query::new()
                .observe(dysp, 0)
                .likelihood(xray, vec![0.9, 0.1]),
        )
        .unwrap()
        .into_posteriors()
        .unwrap();
    // The soft x-ray shifts mass toward TbOrCa explanations, away from
    // bronchitis-only explanations.
    assert!(with_soft.marginal(bronc)[0] < hard_only.marginal(bronc)[0] + 1e-12);
    // P(e) shrinks when more (soft) findings are added.
    assert!(with_soft.prob_evidence <= hard_only.prob_evidence + 1e-12);
    // Hard evidence still reported as a point mass.
    assert_eq!(with_soft.marginal(dysp), &[1.0, 0.0]);
}

#[test]
fn refit_then_mpe_pipeline() {
    // Full pipeline: learn parameters, then ask for the MPE under the
    // fitted model — exercises learn + jtree + max-product together,
    // through the unified Query entry point.
    let truth = datasets::student();
    let fitted = fit_parameters(&truth, &rows(&truth, 20_000, 21), 1.0).unwrap();
    let solver = Solver::new(&fitted);
    let letter = fitted.var_id("Letter").unwrap();
    let mpe = solver
        .query(&Query::new().observe(letter, 1).mpe())
        .unwrap()
        .into_mpe()
        .unwrap();
    assert_eq!(mpe.assignment[letter.index()], 1);
    assert!(mpe.probability > 0.0);
    for v in 0..fitted.num_vars() {
        assert!(mpe.assignment[v] < fitted.cardinality(VarId::from_index(v)));
    }
}

#[test]
fn malformed_virtual_evidence_is_a_typed_error() {
    use fastbn::bayesnet::evidence::EvidenceError;
    use fastbn::{InferenceError, VirtualEvidence};
    let net = datasets::cancer();
    let solver = Solver::new(&net);
    let mut session = solver.session();
    // Likelihood on an unknown variable.
    let err = session
        .run(
            &Query::new()
                .virtual_evidence(VirtualEvidence::empty().with(VarId(99), vec![0.5, 0.5])),
        )
        .unwrap_err();
    assert_eq!(
        err,
        InferenceError::InvalidEvidence(EvidenceError::UnknownVariable(VarId(99)))
    );
    // Wrong-length likelihood for a binary variable.
    let cancer = net.var_id("Cancer").unwrap();
    let err = session
        .run(&Query::new().likelihood(cancer, vec![0.5, 0.3, 0.2]))
        .unwrap_err();
    assert_eq!(
        err,
        InferenceError::InvalidLikelihood {
            var: cancer.index(),
            expected: 2,
            got: 3
        }
    );
    // Session still healthy.
    assert!(session.posteriors(&Evidence::empty()).is_ok());
}

#[test]
fn joint_posterior_rejects_invalid_evidence_before_clique_lookup() {
    use fastbn::bayesnet::evidence::EvidenceError;
    use fastbn::InferenceError;
    let net = datasets::asia();
    let solver = Solver::new(&net);
    let mut session = solver.session();
    // VisitAsia and Smoker never share a clique, so without up-front
    // validation this would be masked as Ok(None).
    let a = net.var_id("VisitAsia").unwrap();
    let s = net.var_id("Smoker").unwrap();
    let err = session
        .joint_posterior(&Evidence::from_pairs([(VarId(99), 0)]), &[a, s])
        .unwrap_err();
    assert_eq!(
        err,
        InferenceError::InvalidEvidence(EvidenceError::UnknownVariable(VarId(99)))
    );
}
