//! Property-style tests of inference itself (seeded sweeps — the build
//! environment has no proptest): on random networks with random
//! (sampled, hence possible) evidence, the junction-tree engines must
//! match variable elimination, marginals must be normalized, and results
//! must be invariant to engine choice, thread count, and session.

use std::sync::Arc;

use fastbn::bayesnet::generators::{self, ArityDist, CptStyle, WindowedDagSpec};
use fastbn::bayesnet::sampler;
use fastbn::inference::oracle::variable_elimination as ve;
use fastbn::{EngineKind, Evidence, Prepared, Solver};

/// A deterministic family of network specs, replacing the old proptest
/// strategy: seed sweeps cover the same node / parent / window ranges.
fn spec_for(case: u64) -> WindowedDagSpec {
    let nodes = 6 + (case as usize * 7) % 22; // 6..28
    WindowedDagSpec {
        name: "prop-net".into(),
        nodes,
        target_arcs: nodes + nodes / 2,
        max_parents: 1 + (case as usize) % 3, // 1..4
        window: 2 + (case as usize * 3) % 4,  // 2..6
        arity: ArityDist::Uniform { min: 2, max: 4 },
        cpt: CptStyle { alpha: 0.8 },
        seed: case * 31 + 5,
    }
}

fn sampled_evidence(net: &fastbn::BayesianNetwork, fraction: f64, seed: u64) -> Evidence {
    sampler::generate_cases(net, 1, fraction, seed)
        .pop()
        .unwrap()
        .evidence
}

#[test]
fn jt_matches_ve_on_random_networks() {
    for case in 0..24 {
        let net = generators::windowed_dag(&spec_for(case));
        let evidence = sampled_evidence(&net, 0.3, case + 1000);
        let solver = Solver::new(&net);
        let jt = solver.posteriors(&evidence).unwrap();
        let oracle = ve::all_posteriors(&net, &evidence).unwrap();
        assert!(
            jt.max_abs_diff(&oracle) < 1e-8,
            "case {case}: diff {}",
            jt.max_abs_diff(&oracle)
        );
        let rel = (jt.prob_evidence - oracle.prob_evidence).abs() / oracle.prob_evidence;
        assert!(rel < 1e-8, "case {case}: P(e) rel err {rel}");
    }
}

#[test]
fn marginals_are_normalized_distributions() {
    for case in 0..24 {
        let net = generators::windowed_dag(&spec_for(case));
        let evidence = sampled_evidence(&net, 0.2, case + 2000);
        let solver = Solver::builder(&net)
            .engine(EngineKind::Hybrid)
            .threads(2)
            .build();
        let post = solver.posteriors(&evidence).unwrap();
        for v in 0..net.num_vars() {
            let m = post.marginal(fastbn::VarId::from_index(v));
            let sum: f64 = m.iter().sum();
            assert!(
                (sum - 1.0).abs() < 1e-9,
                "case {case}: var {v} sums to {sum}"
            );
            assert!(m.iter().all(|&p| (0.0..=1.0 + 1e-12).contains(&p)));
        }
        assert!(post.prob_evidence > 0.0 && post.prob_evidence <= 1.0 + 1e-12);
    }
}

#[test]
fn engines_and_thread_counts_are_bitwise_interchangeable() {
    for case in 0..12 {
        let net = generators::windowed_dag(&spec_for(case));
        let evidence = sampled_evidence(&net, 0.25, case + 3000);
        let prepared = Arc::new(Prepared::new(&net, &Default::default()));
        let seq = Solver::from_prepared(prepared.clone()).build();
        let expected = seq.posteriors(&evidence).unwrap();
        for kind in EngineKind::parallel() {
            for t in [1usize, 3] {
                let solver = Solver::from_prepared(prepared.clone())
                    .engine(kind)
                    .threads(t)
                    .build();
                let got = solver.posteriors(&evidence).unwrap();
                assert_eq!(
                    expected.max_abs_diff(&got),
                    0.0,
                    "case {case}: {kind} t={t} differs"
                );
            }
        }
    }
}

#[test]
fn full_assignment_prob_evidence_matches_chain_rule() {
    // Chain rule check: P(e) computed by the engine equals the product
    // of CPT entries when e is a full assignment.
    for case in 0..12 {
        let net = generators::windowed_dag(&spec_for(case));
        let sampled = sampler::generate_cases(&net, 1, 1.0, case + 4000)
            .pop()
            .unwrap();
        let solver = Solver::new(&net);
        let post = solver.posteriors(&sampled.evidence).unwrap();
        let mut expected = 1.0;
        for v in 0..net.num_vars() {
            let id = fastbn::VarId::from_index(v);
            let cpt = net.cpt(id);
            let parent_states: Vec<usize> = cpt
                .parents()
                .iter()
                .map(|p| sampled.full_assignment[p.index()])
                .collect();
            expected *= cpt.probability(sampled.full_assignment[v], &parent_states);
        }
        let rel = (post.prob_evidence - expected).abs() / expected.max(f64::MIN_POSITIVE);
        assert!(
            rel < 1e-9,
            "case {case}: P(e) {} vs chain rule {}",
            post.prob_evidence,
            expected
        );
    }
}
