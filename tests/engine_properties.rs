//! Property-based tests of inference itself: on random networks with
//! random (sampled, hence possible) evidence, the junction-tree engines
//! must match variable elimination, marginals must be normalized, and
//! results must be invariant to thread count and engine choice.

use std::sync::Arc;

use fastbn::bayesnet::generators::{self, ArityDist, CptStyle, WindowedDagSpec};
use fastbn::bayesnet::sampler;
use fastbn::inference::oracle::variable_elimination as ve;
use fastbn::{build_engine, EngineKind, Prepared};
use proptest::prelude::*;

fn arb_net_spec() -> impl Strategy<Value = WindowedDagSpec> {
    (6usize..28, 1usize..4, 2usize..6, 0u64..500).prop_map(
        |(nodes, max_parents, window, seed)| WindowedDagSpec {
            name: "prop-net".into(),
            nodes,
            target_arcs: nodes + nodes / 2,
            max_parents,
            window,
            arity: ArityDist::Uniform { min: 2, max: 4 },
            cpt: CptStyle { alpha: 0.8 },
            seed,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn jt_matches_ve_on_random_networks(spec in arb_net_spec(), case_seed in 0u64..100) {
        let net = generators::windowed_dag(&spec);
        let evidence = sampler::generate_cases(&net, 1, 0.3, case_seed)
            .pop()
            .unwrap()
            .evidence;
        let prepared = Arc::new(Prepared::new(&net, &Default::default()));
        let mut seq = build_engine(EngineKind::Seq, prepared.clone(), 1);
        let jt = seq.query(&evidence).unwrap();
        let oracle = ve::all_posteriors(&net, &evidence).unwrap();
        prop_assert!(jt.max_abs_diff(&oracle) < 1e-8,
            "diff {}", jt.max_abs_diff(&oracle));
        let rel = (jt.prob_evidence - oracle.prob_evidence).abs() / oracle.prob_evidence;
        prop_assert!(rel < 1e-8, "P(e) rel err {rel}");
    }

    #[test]
    fn marginals_are_normalized_distributions(spec in arb_net_spec(), case_seed in 0u64..100) {
        let net = generators::windowed_dag(&spec);
        let evidence = sampler::generate_cases(&net, 1, 0.2, case_seed)
            .pop()
            .unwrap()
            .evidence;
        let prepared = Arc::new(Prepared::new(&net, &Default::default()));
        let mut hybrid = build_engine(EngineKind::Hybrid, prepared, 2);
        let post = hybrid.query(&evidence).unwrap();
        for v in 0..net.num_vars() {
            let m = post.marginal(fastbn::VarId::from_index(v));
            let sum: f64 = m.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-9, "var {v} sums to {sum}");
            prop_assert!(m.iter().all(|&p| (0.0..=1.0 + 1e-12).contains(&p)));
        }
        prop_assert!(post.prob_evidence > 0.0 && post.prob_evidence <= 1.0 + 1e-12);
    }

    #[test]
    fn engines_and_thread_counts_are_bitwise_interchangeable(
        spec in arb_net_spec(),
        case_seed in 0u64..100,
    ) {
        let net = generators::windowed_dag(&spec);
        let evidence = sampler::generate_cases(&net, 1, 0.25, case_seed)
            .pop()
            .unwrap()
            .evidence;
        let prepared = Arc::new(Prepared::new(&net, &Default::default()));
        let mut seq = build_engine(EngineKind::Seq, prepared.clone(), 1);
        let expected = seq.query(&evidence).unwrap();
        for kind in [EngineKind::Direct, EngineKind::Primitive, EngineKind::Element, EngineKind::Hybrid] {
            for t in [1usize, 3] {
                let mut engine = build_engine(kind, prepared.clone(), t);
                let got = engine.query(&evidence).unwrap();
                prop_assert_eq!(expected.max_abs_diff(&got), 0.0,
                    "{} t={} differs", kind.name(), t);
            }
        }
    }

    #[test]
    fn conditioning_on_sampled_state_raises_its_joint_consistency(
        spec in arb_net_spec(),
        case_seed in 0u64..50,
    ) {
        // Chain rule check: P(e) computed by the engine equals the product
        // of CPT entries when e is a full assignment.
        let net = generators::windowed_dag(&spec);
        let case = sampler::generate_cases(&net, 1, 1.0, case_seed).pop().unwrap();
        let prepared = Arc::new(Prepared::new(&net, &Default::default()));
        let mut engine = build_engine(EngineKind::Seq, prepared, 1);
        let post = engine.query(&case.evidence).unwrap();
        let mut expected = 1.0;
        for v in 0..net.num_vars() {
            let id = fastbn::VarId::from_index(v);
            let cpt = net.cpt(id);
            let parent_states: Vec<usize> = cpt
                .parents()
                .iter()
                .map(|p| case.full_assignment[p.index()])
                .collect();
            expected *= cpt.probability(case.full_assignment[v], &parent_states);
        }
        let rel = (post.prob_evidence - expected).abs() / expected.max(f64::MIN_POSITIVE);
        prop_assert!(rel < 1e-9, "P(e) {} vs chain rule {}", post.prob_evidence, expected);
    }
}
