//! BIF round-trip (seeded sweep — the build environment has no
//! proptest): any generated network serializes to BIF and parses back to
//! an equivalent network (same structure, same CPTs, same inference
//! results).

use fastbn::bayesnet::generators::{self, ArityDist, CptStyle, WindowedDagSpec};
use fastbn::bayesnet::{bif, datasets};
use fastbn::VarId;

#[test]
fn random_networks_roundtrip_through_bif() {
    for case in 0u64..32 {
        let nodes = 2 + (case as usize * 5) % 28; // 2..30
        let spec = WindowedDagSpec {
            name: "bif-prop".into(),
            nodes,
            target_arcs: nodes * 2,
            max_parents: 1 + (case as usize) % 3, // 1..4
            window: 5,
            arity: ArityDist::Uniform { min: 2, max: 5 },
            cpt: CptStyle { alpha: 1.0 },
            seed: case * 37 + 11,
        };
        let net = generators::windowed_dag(&spec);
        let text = bif::to_bif_string(&net);
        let back = bif::parse_str(&text).expect("parse own output");
        assert_eq!(back.num_vars(), net.num_vars(), "case {case}");
        assert_eq!(back.num_edges(), net.num_edges(), "case {case}");
        for v in 0..net.num_vars() {
            let id = VarId::from_index(v);
            assert_eq!(back.var(id).name(), net.var(id).name());
            assert_eq!(back.var(id).states(), net.var(id).states());
            assert_eq!(back.cpt(id).parents(), net.cpt(id).parents());
            let (a, b) = (back.cpt(id).values(), net.cpt(id).values());
            for (x, y) in a.iter().zip(b) {
                assert!((x - y).abs() < 1e-12, "case {case} var {v}: {x} vs {y}");
            }
        }
    }
}

#[test]
fn bif_text_of_asia_reparses_after_whitespace_mangling() {
    let net = datasets::asia();
    let text = bif::to_bif_string(&net);
    // Collapse all newlines: the grammar is whitespace-insensitive.
    let mangled = text.replace('\n', " ");
    let back = bif::parse_str(&mangled).unwrap();
    assert_eq!(back.num_vars(), 8);
}

#[test]
fn bif_accepts_foreign_dialect_features() {
    // Comments, properties, quoted names, default rows — things real
    // bnlearn/JavaBayes files contain.
    let text = r#"
// full line comment
network "chest clinic" {
  property author "test";
}
variable A { type discrete [ 2 ] { "yes state", no }; property x y z; }
variable B { type discrete [ 2 ] { t, f }; }
probability ( A ) { table 0.25, 0.75; }
probability ( B | A ) {
  default 0.5, 0.5;
  ("yes state") 0.9, 0.1; /* inline */
}
"#;
    let net = bif::parse_str(text).unwrap();
    assert_eq!(net.name(), "chest clinic");
    let b = net.var_id("B").unwrap();
    assert!((net.cpt(b).probability(0, &[0]) - 0.9).abs() < 1e-12);
    assert!((net.cpt(b).probability(0, &[1]) - 0.5).abs() < 1e-12);
}
