//! Targeted-marginal queries: `Query::targets(...)` must (a) compute
//! exactly the requested marginals, (b) match the full-`Posteriors` path
//! bitwise, and (c) match the brute-force enumeration oracle on the
//! classic networks.

use fastbn::bayesnet::{datasets, sampler};
use fastbn::inference::oracle::brute_force;
use fastbn::{EngineKind, Query, Solver, VarId};

#[test]
fn targets_match_full_path_and_brute_force_oracle() {
    for name in ["sprinkler", "asia"] {
        let net = datasets::by_name(name).unwrap();
        let solver = Solver::new(&net);
        let mut session = solver.session();
        for (i, case) in sampler::generate_cases(&net, 6, 0.25, 17)
            .iter()
            .enumerate()
        {
            // Target every other variable — a proper non-trivial subset.
            let targets: Vec<VarId> = (0..net.num_vars())
                .step_by(2)
                .map(VarId::from_index)
                .collect();
            let query = Query::new()
                .evidence(case.evidence.clone())
                .targets(targets.iter().copied());
            let targeted = session.run(&query).unwrap().into_posteriors().unwrap();
            let full = session.posteriors(&case.evidence).unwrap();
            let oracle = brute_force::all_posteriors(&net, &case.evidence).unwrap();

            for v in 0..net.num_vars() {
                let id = VarId::from_index(v);
                if targets.contains(&id) {
                    // (b) bitwise against the full path.
                    assert_eq!(
                        targeted.marginal(id),
                        full.marginal(id),
                        "{name} case {i} var {v}: targeted vs full"
                    );
                    // (c) against the independent enumeration oracle.
                    for (a, b) in targeted.marginal(id).iter().zip(oracle.marginal(id)) {
                        assert!(
                            (a - b).abs() < 1e-10,
                            "{name} case {i} var {v}: {a} vs oracle {b}"
                        );
                    }
                } else {
                    // (a) non-targets are genuinely not computed.
                    assert!(
                        !targeted.has_marginal(id),
                        "{name} case {i} var {v}: must not be computed"
                    );
                }
            }
            assert_eq!(
                targeted.prob_evidence.to_bits(),
                full.prob_evidence.to_bits(),
                "{name} case {i}: P(e) identical on both paths"
            );
        }
    }
}

#[test]
fn single_target_on_every_engine() {
    let net = datasets::asia();
    let lung = net.var_id("LungCancer").unwrap();
    let dysp = net.var_id("Dyspnea").unwrap();
    let query = Query::new().observe(dysp, 0).targets([lung]);
    let reference = Solver::new(&net)
        .query(&query)
        .unwrap()
        .into_posteriors()
        .unwrap();
    for kind in EngineKind::all() {
        let solver = Solver::builder(&net).engine(kind).threads(2).build();
        let got = solver.query(&query).unwrap().into_posteriors().unwrap();
        assert_eq!(
            got.marginal(lung),
            reference.marginal(lung),
            "{kind}: targeted marginal must be engine-invariant"
        );
        assert_eq!(got.computed_vars().count(), 1, "{kind}");
    }
}

#[test]
fn targets_compose_with_virtual_evidence() {
    let net = datasets::cancer();
    let solver = Solver::new(&net);
    let mut session = solver.session();
    let xray = net.var_id("XRay").unwrap();
    let cancer = net.var_id("Cancer").unwrap();
    let full = session
        .run(&Query::new().likelihood(xray, vec![0.75, 0.25]))
        .unwrap()
        .into_posteriors()
        .unwrap();
    let targeted = session
        .run(
            &Query::new()
                .likelihood(xray, vec![0.75, 0.25])
                .targets([cancer]),
        )
        .unwrap()
        .into_posteriors()
        .unwrap();
    assert_eq!(targeted.marginal(cancer), full.marginal(cancer));
    assert!(!targeted.has_marginal(xray));
}

#[test]
fn observed_target_reports_point_mass() {
    let net = datasets::sprinkler();
    let rain = net.var_id("Rain").unwrap();
    let solver = Solver::new(&net);
    let post = solver
        .query(&Query::new().observe(rain, 1).targets([rain]))
        .unwrap()
        .into_posteriors()
        .unwrap();
    assert_eq!(post.marginal(rain), &[0.0, 1.0]);
}

#[test]
fn out_of_range_target_is_a_typed_error_not_a_panic() {
    let net = datasets::sprinkler(); // 4 variables
    let solver = Solver::new(&net);
    let err = solver
        .query(&Query::new().targets([VarId(99)]))
        .unwrap_err();
    assert_eq!(
        err,
        fastbn::InferenceError::InvalidTarget {
            var: 99,
            num_vars: 4
        }
    );
    assert!(err.to_string().contains("99"));
}
