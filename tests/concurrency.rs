//! The session API's headline guarantee: one `Solver` shared by many
//! concurrently querying OS threads returns **bit-identical** posteriors
//! to the sequential Fast-BNI-seq baseline, for every engine family.

use std::sync::Arc;

use fastbn::bayesnet::{datasets, generators, sampler};
use fastbn::{EngineKind, Evidence, Posteriors, Prepared, Query, Solver};

const QUERY_THREADS: usize = 8;
const ROUNDS: usize = 10;

/// Sequential ground truth: SeqJt, one thread, one session.
fn baseline(prepared: &Arc<Prepared>, cases: &[Evidence]) -> Vec<Posteriors> {
    let seq = Solver::from_prepared(prepared.clone())
        .engine(EngineKind::Seq)
        .build();
    let mut session = seq.session();
    cases
        .iter()
        .map(|ev| session.posteriors(ev).unwrap())
        .collect()
}

/// Hammers one shared solver from `QUERY_THREADS` OS threads, comparing
/// every result bitwise against the sequential baseline.
fn assert_concurrent_bitwise(solver: &Solver, cases: &[Evidence], expected: &[Posteriors]) {
    std::thread::scope(|scope| {
        for worker in 0..QUERY_THREADS {
            scope.spawn(move || {
                let mut session = solver.session();
                for round in 0..ROUNDS {
                    // Stagger the order per worker so interleavings vary.
                    for i in 0..cases.len() {
                        let i = (i + worker + round) % cases.len();
                        let got = session.posteriors(&cases[i]).unwrap();
                        assert_eq!(
                            expected[i].max_abs_diff(&got),
                            0.0,
                            "worker {worker} round {round} case {i}: {} differs",
                            solver.engine_name()
                        );
                        assert_eq!(
                            expected[i].prob_evidence.to_bits(),
                            got.prob_evidence.to_bits()
                        );
                    }
                }
            });
        }
    });
}

#[test]
fn eight_threads_one_hybrid_solver_match_seq_baseline() {
    // The acceptance setup: Fast-BNI-par (itself running 2-thread
    // parallel regions) shared by 8 querying threads.
    let net = datasets::asia();
    let prepared = Arc::new(Prepared::new(&net, &Default::default()));
    let cases: Vec<Evidence> = sampler::generate_cases(&net, 12, 0.25, 2024)
        .into_iter()
        .map(|c| c.evidence)
        .collect();
    let expected = baseline(&prepared, &cases);
    let solver = Solver::from_prepared(prepared.clone())
        .engine(EngineKind::Hybrid)
        .threads(2)
        .build();
    assert_concurrent_bitwise(&solver, &cases, &expected);
    assert!(
        solver.pooled_states() <= QUERY_THREADS,
        "scratch pool must not exceed peak concurrency: {}",
        solver.pooled_states()
    );
}

#[test]
fn every_engine_family_is_concurrency_safe() {
    // Smaller workload, all six engines: sequential engines interleave
    // across sessions, parallel engines additionally share their pool.
    let net = datasets::sprinkler();
    let prepared = Arc::new(Prepared::new(&net, &Default::default()));
    let cases: Vec<Evidence> = sampler::generate_cases(&net, 6, 0.3, 7)
        .into_iter()
        .map(|c| c.evidence)
        .collect();
    let expected = baseline(&prepared, &cases);
    for kind in EngineKind::all() {
        let solver = Solver::from_prepared(prepared.clone())
            .engine(kind)
            .threads(2)
            .build();
        assert_concurrent_bitwise(&solver, &cases, &expected);
    }
}

#[test]
fn concurrent_threads_on_a_paper_style_network() {
    // A larger random DAG: layered schedules, multi-child parents, bigger
    // cliques — closer to the paper's workloads than the toy networks.
    let spec = generators::WindowedDagSpec {
        nodes: 60,
        target_arcs: 80,
        max_parents: 3,
        window: 6,
        seed: 12,
        ..generators::WindowedDagSpec::new("concurrency", 60)
    };
    let net = generators::windowed_dag(&spec);
    let prepared = Arc::new(Prepared::new(&net, &Default::default()));
    let cases: Vec<Evidence> = sampler::generate_cases(&net, 6, 0.2, 99)
        .into_iter()
        .map(|c| c.evidence)
        .collect();
    let expected = baseline(&prepared, &cases);
    let solver = Solver::from_prepared(prepared.clone())
        .engine(EngineKind::Hybrid)
        .threads(3)
        .build();
    assert_concurrent_bitwise(&solver, &cases, &expected);
}

#[test]
fn mixed_query_kinds_interleave_concurrently() {
    // Marginal, targeted, virtual-evidence and MPE queries hammering one
    // solver at once; each thread checks its own kind against a
    // quiescent reference.
    let net = datasets::asia();
    let solver = Solver::builder(&net)
        .engine(EngineKind::Hybrid)
        .threads(2)
        .build();
    let dysp = net.var_id("Dyspnea").unwrap();
    let lung = net.var_id("LungCancer").unwrap();
    let xray = net.var_id("XRay").unwrap();

    let marginal_q = Query::new().observe(dysp, 0);
    let targeted_q = Query::new().observe(dysp, 0).targets([lung]);
    let virtual_q = Query::new().likelihood(xray, vec![0.8, 0.2]);
    let mpe_q = Query::new().observe(dysp, 0).mpe();
    let queries = [&marginal_q, &targeted_q, &virtual_q, &mpe_q];
    let reference: Vec<_> = queries.iter().map(|q| solver.query(q).unwrap()).collect();

    std::thread::scope(|scope| {
        for worker in 0..QUERY_THREADS {
            let reference = &reference;
            let queries = &queries;
            let solver = &solver;
            scope.spawn(move || {
                let mut session = solver.session();
                for round in 0..ROUNDS {
                    let i = (worker + round) % queries.len();
                    let got = session.run(queries[i]).unwrap();
                    assert_eq!(&got, &reference[i], "worker {worker} query {i}");
                }
            });
        }
    });
}
