//! Evidence edge cases, exercised across all engines: empty evidence,
//! full observation, impossible findings, deterministic CPTs, invalid
//! input, repeated querying.

use std::sync::Arc;

use fastbn::bayesnet::{datasets, NetworkBuilder};
use fastbn::{
    build_engine, Evidence, EngineKind, InferenceError, Prepared, VarId,
};

fn engines_for(
    prepared: &Arc<Prepared>,
) -> Vec<Box<dyn fastbn::InferenceEngine + Send>> {
    EngineKind::all()
        .into_iter()
        .map(|k| build_engine(k, prepared.clone(), 2))
        .collect()
}

#[test]
fn empty_evidence_reproduces_priors_in_every_engine() {
    let net = datasets::asia();
    let prepared = Arc::new(Prepared::new(&net, &Default::default()));
    let tub = net.var_id("Tuberculosis").unwrap();
    for mut engine in engines_for(&prepared) {
        let post = engine.query(&Evidence::empty()).unwrap();
        assert!(
            (post.marginal(tub)[0] - 0.0104).abs() < 1e-9,
            "{}",
            engine.name()
        );
        assert!((post.prob_evidence - 1.0).abs() < 1e-9, "{}", engine.name());
    }
}

#[test]
fn fully_observed_network_in_every_engine() {
    let net = datasets::sprinkler();
    let prepared = Arc::new(Prepared::new(&net, &Default::default()));
    // Cloudy=t, Sprinkler=f, Rain=t, Wet=t: P = 0.5 * 0.9 * 0.8 * 0.9.
    let ev = Evidence::from_pairs([
        (VarId(0), 0),
        (VarId(1), 1),
        (VarId(2), 0),
        (VarId(3), 0),
    ]);
    let expected = 0.5 * 0.9 * 0.8 * 0.9;
    for mut engine in engines_for(&prepared) {
        let post = engine.query(&ev).unwrap();
        assert!(
            (post.prob_evidence - expected).abs() < 1e-12,
            "{}: {} vs {expected}",
            engine.name(),
            post.prob_evidence
        );
        for v in 0..4 {
            let m = post.marginal(VarId(v));
            assert_eq!(m.iter().filter(|&&p| p == 1.0).count(), 1);
        }
    }
}

#[test]
fn impossible_evidence_rejected_by_every_engine() {
    let net = datasets::asia();
    let prepared = Arc::new(Prepared::new(&net, &Default::default()));
    let tub = net.var_id("Tuberculosis").unwrap();
    let either = net.var_id("TbOrCa").unwrap();
    let impossible = Evidence::from_pairs([(tub, 0), (either, 1)]);
    for mut engine in engines_for(&prepared) {
        assert_eq!(
            engine.query(&impossible).unwrap_err(),
            InferenceError::ImpossibleEvidence,
            "{}",
            engine.name()
        );
        // Engine remains usable after the failure.
        assert!(engine.query(&Evidence::empty()).is_ok(), "{}", engine.name());
    }
}

#[test]
fn deterministic_cpts_propagate_hard_constraints() {
    let net = datasets::asia();
    let prepared = Arc::new(Prepared::new(&net, &Default::default()));
    let tub = net.var_id("Tuberculosis").unwrap();
    let lung = net.var_id("LungCancer").unwrap();
    let either = net.var_id("TbOrCa").unwrap();
    for mut engine in engines_for(&prepared) {
        // Observing either=no forces tub=no and lung=no exactly.
        let post = engine.query(&Evidence::from_pairs([(either, 1)])).unwrap();
        assert_eq!(post.marginal(tub)[0], 0.0, "{}", engine.name());
        assert_eq!(post.marginal(lung)[0], 0.0, "{}", engine.name());
    }
}

#[test]
fn evidence_on_single_node_network() {
    let mut b = NetworkBuilder::new();
    let a = b.add_var("only", &["x", "y", "z"]);
    b.set_cpt(a, vec![], vec![0.2, 0.3, 0.5]).unwrap();
    let net = b.build().unwrap();
    let prepared = Arc::new(Prepared::new(&net, &Default::default()));
    for mut engine in engines_for(&prepared) {
        let post = engine.query(&Evidence::from_pairs([(a, 2)])).unwrap();
        assert_eq!(post.marginal(a), &[0.0, 0.0, 1.0], "{}", engine.name());
        assert!((post.prob_evidence - 0.5).abs() < 1e-12, "{}", engine.name());
    }
}

#[test]
fn disconnected_components_stay_independent() {
    let mut b = NetworkBuilder::new();
    let a = b.add_var("a", &["t", "f"]);
    let a2 = b.add_var("a2", &["t", "f"]);
    let c = b.add_var("c", &["t", "f"]);
    b.set_cpt(a, vec![], vec![0.6, 0.4]).unwrap();
    b.set_cpt(a2, vec![a], vec![0.9, 0.1, 0.2, 0.8]).unwrap();
    b.set_cpt(c, vec![], vec![0.3, 0.7]).unwrap();
    let net = b.build().unwrap();
    let prepared = Arc::new(Prepared::new(&net, &Default::default()));
    for mut engine in engines_for(&prepared) {
        // Evidence in one component must not disturb the other.
        let post = engine.query(&Evidence::from_pairs([(a2, 0)])).unwrap();
        assert!(
            (post.marginal(c)[0] - 0.3).abs() < 1e-12,
            "{}",
            engine.name()
        );
        // P(a2 = t) = 0.6*0.9 + 0.4*0.2 = 0.62.
        assert!(
            (post.prob_evidence - 0.62).abs() < 1e-12,
            "{}: {}",
            engine.name(),
            post.prob_evidence
        );
    }
}

#[test]
fn invalid_evidence_fails_validation() {
    let net = datasets::sprinkler();
    let ev = Evidence::from_pairs([(VarId(0), 5)]);
    assert!(ev.validate(&net).is_err());
    let unknown = Evidence::from_pairs([(VarId(99), 0)]);
    assert!(unknown.validate(&net).is_err());
}

#[test]
fn overwriting_and_clearing_evidence_between_queries() {
    let net = datasets::cancer();
    let prepared = Arc::new(Prepared::new(&net, &Default::default()));
    let mut engine = build_engine(EngineKind::Hybrid, prepared, 2);
    let smoker = net.var_id("Smoker").unwrap();
    let cancer = net.var_id("Cancer").unwrap();

    let p_smoker = engine
        .query(&Evidence::from_pairs([(smoker, 0)]))
        .unwrap()
        .marginal(cancer)[0];
    let p_nonsmoker = engine
        .query(&Evidence::from_pairs([(smoker, 1)]))
        .unwrap()
        .marginal(cancer)[0];
    let p_prior = engine.query(&Evidence::empty()).unwrap().marginal(cancer)[0];
    assert!(p_smoker > p_prior && p_prior > p_nonsmoker);
}
