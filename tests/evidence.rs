//! Evidence edge cases, exercised across all engines: empty evidence,
//! full observation, impossible findings, deterministic CPTs, invalid
//! input, repeated querying.

use std::sync::Arc;

use fastbn::bayesnet::{datasets, NetworkBuilder};
use fastbn::{EngineKind, Evidence, InferenceError, Prepared, Solver, VarId};

fn solvers_for(prepared: &Arc<Prepared>) -> Vec<Solver> {
    EngineKind::all()
        .into_iter()
        .map(|k| {
            Solver::from_prepared(prepared.clone())
                .engine(k)
                .threads(2)
                .build()
        })
        .collect()
}

#[test]
fn empty_evidence_reproduces_priors_in_every_engine() {
    let net = datasets::asia();
    let prepared = Arc::new(Prepared::new(&net, &Default::default()));
    let tub = net.var_id("Tuberculosis").unwrap();
    for solver in solvers_for(&prepared) {
        let post = solver.posteriors(&Evidence::empty()).unwrap();
        assert!(
            (post.marginal(tub)[0] - 0.0104).abs() < 1e-9,
            "{}",
            solver.engine_name()
        );
        assert!(
            (post.prob_evidence - 1.0).abs() < 1e-9,
            "{}",
            solver.engine_name()
        );
    }
}

#[test]
fn fully_observed_network_in_every_engine() {
    let net = datasets::sprinkler();
    let prepared = Arc::new(Prepared::new(&net, &Default::default()));
    // Cloudy=t, Sprinkler=f, Rain=t, Wet=t: P = 0.5 * 0.9 * 0.8 * 0.9.
    let ev = Evidence::from_pairs([(VarId(0), 0), (VarId(1), 1), (VarId(2), 0), (VarId(3), 0)]);
    let expected = 0.5 * 0.9 * 0.8 * 0.9;
    for solver in solvers_for(&prepared) {
        let post = solver.posteriors(&ev).unwrap();
        assert!(
            (post.prob_evidence - expected).abs() < 1e-12,
            "{}: {} vs {expected}",
            solver.engine_name(),
            post.prob_evidence
        );
        for v in 0..4 {
            let m = post.marginal(VarId(v));
            assert_eq!(m.iter().filter(|&&p| p == 1.0).count(), 1);
        }
    }
}

#[test]
fn impossible_evidence_rejected_by_every_engine() {
    let net = datasets::asia();
    let prepared = Arc::new(Prepared::new(&net, &Default::default()));
    let tub = net.var_id("Tuberculosis").unwrap();
    let either = net.var_id("TbOrCa").unwrap();
    let impossible = Evidence::from_pairs([(tub, 0), (either, 1)]);
    for solver in solvers_for(&prepared) {
        let mut session = solver.session();
        assert_eq!(
            session.posteriors(&impossible).unwrap_err(),
            InferenceError::ImpossibleEvidence,
            "{}",
            solver.engine_name()
        );
        // Session remains usable after the failure.
        assert!(
            session.posteriors(&Evidence::empty()).is_ok(),
            "{}",
            solver.engine_name()
        );
    }
}

#[test]
fn deterministic_cpts_propagate_hard_constraints() {
    let net = datasets::asia();
    let prepared = Arc::new(Prepared::new(&net, &Default::default()));
    let tub = net.var_id("Tuberculosis").unwrap();
    let lung = net.var_id("LungCancer").unwrap();
    let either = net.var_id("TbOrCa").unwrap();
    for solver in solvers_for(&prepared) {
        // Observing either=no forces tub=no and lung=no exactly.
        let post = solver
            .posteriors(&Evidence::from_pairs([(either, 1)]))
            .unwrap();
        assert_eq!(post.marginal(tub)[0], 0.0, "{}", solver.engine_name());
        assert_eq!(post.marginal(lung)[0], 0.0, "{}", solver.engine_name());
    }
}

#[test]
fn evidence_on_single_node_network() {
    let mut b = NetworkBuilder::new();
    let a = b.add_var("only", &["x", "y", "z"]);
    b.set_cpt(a, vec![], vec![0.2, 0.3, 0.5]).unwrap();
    let net = b.build().unwrap();
    let prepared = Arc::new(Prepared::new(&net, &Default::default()));
    for solver in solvers_for(&prepared) {
        let post = solver.posteriors(&Evidence::from_pairs([(a, 2)])).unwrap();
        assert_eq!(
            post.marginal(a),
            &[0.0, 0.0, 1.0],
            "{}",
            solver.engine_name()
        );
        assert!(
            (post.prob_evidence - 0.5).abs() < 1e-12,
            "{}",
            solver.engine_name()
        );
    }
}

#[test]
fn disconnected_components_stay_independent() {
    let mut b = NetworkBuilder::new();
    let a = b.add_var("a", &["t", "f"]);
    let a2 = b.add_var("a2", &["t", "f"]);
    let c = b.add_var("c", &["t", "f"]);
    b.set_cpt(a, vec![], vec![0.6, 0.4]).unwrap();
    b.set_cpt(a2, vec![a], vec![0.9, 0.1, 0.2, 0.8]).unwrap();
    b.set_cpt(c, vec![], vec![0.3, 0.7]).unwrap();
    let net = b.build().unwrap();
    let prepared = Arc::new(Prepared::new(&net, &Default::default()));
    for solver in solvers_for(&prepared) {
        // Evidence in one component must not disturb the other.
        let post = solver.posteriors(&Evidence::from_pairs([(a2, 0)])).unwrap();
        assert!(
            (post.marginal(c)[0] - 0.3).abs() < 1e-12,
            "{}",
            solver.engine_name()
        );
        // P(a2 = t) = 0.6*0.9 + 0.4*0.2 = 0.62.
        assert!(
            (post.prob_evidence - 0.62).abs() < 1e-12,
            "{}: {}",
            solver.engine_name(),
            post.prob_evidence
        );
    }
}

#[test]
fn invalid_evidence_fails_validation() {
    let net = datasets::sprinkler();
    let ev = Evidence::from_pairs([(VarId(0), 5)]);
    assert!(ev.validate(&net).is_err());
    let unknown = Evidence::from_pairs([(VarId(99), 0)]);
    assert!(unknown.validate(&net).is_err());
}

#[test]
fn overwriting_and_clearing_evidence_between_queries() {
    let net = datasets::cancer();
    let solver = Solver::builder(&net)
        .engine(EngineKind::Hybrid)
        .threads(2)
        .build();
    let mut session = solver.session();
    let smoker = net.var_id("Smoker").unwrap();
    let cancer = net.var_id("Cancer").unwrap();

    let p_smoker = session
        .posteriors(&Evidence::from_pairs([(smoker, 0)]))
        .unwrap()
        .marginal(cancer)[0];
    let p_nonsmoker = session
        .posteriors(&Evidence::from_pairs([(smoker, 1)]))
        .unwrap()
        .marginal(cancer)[0];
    let p_prior = session
        .posteriors(&Evidence::empty())
        .unwrap()
        .marginal(cancer)[0];
    assert!(p_smoker > p_prior && p_prior > p_nonsmoker);
}

#[test]
fn malformed_evidence_is_a_typed_error_not_a_panic() {
    use fastbn::bayesnet::evidence::EvidenceError;
    let net = datasets::sprinkler(); // 4 binary variables
    let prepared = Arc::new(Prepared::new(&net, &Default::default()));
    for solver in solvers_for(&prepared) {
        let mut session = solver.session();
        // Unknown variable.
        let err = session
            .posteriors(&Evidence::from_pairs([(VarId(99), 0)]))
            .unwrap_err();
        assert_eq!(
            err,
            InferenceError::InvalidEvidence(EvidenceError::UnknownVariable(VarId(99))),
            "{}",
            solver.engine_name()
        );
        // Out-of-range state on a known variable.
        let err = session
            .posteriors(&Evidence::from_pairs([(VarId(0), 7)]))
            .unwrap_err();
        assert_eq!(
            err,
            InferenceError::InvalidEvidence(EvidenceError::StateOutOfRange {
                var: VarId(0),
                state: 7,
                cardinality: 2,
            }),
            "{}",
            solver.engine_name()
        );
        // Session still healthy afterwards.
        assert!(session.posteriors(&Evidence::empty()).is_ok());
    }
}
