//! Integration tests of the MPE extension: max-product results are
//! consistent with posterior inference and stable across networks, both
//! through the standalone function and the MPE-mode Query.

use fastbn::bayesnet::{datasets, sampler};
use fastbn::inference::mpe::most_probable_explanation;
use fastbn::{Evidence, Query, Solver, VarId};
use fastbn_bench::workloads::workload_by_name;

#[test]
fn mpe_probability_never_exceeds_evidence_probability() {
    // P(x*, e) ≤ P(e) with equality iff the conditional is degenerate.
    let net = datasets::asia();
    let solver = Solver::new(&net);
    let mut session = solver.session();
    for case in sampler::generate_cases(&net, 10, 0.25, 77) {
        let posterior = session.posteriors(&case.evidence).unwrap();
        let mpe = session.mpe(&case.evidence).unwrap();
        assert!(
            mpe.probability <= posterior.prob_evidence + 1e-12,
            "P(x*, e) = {} > P(e) = {}",
            mpe.probability,
            posterior.prob_evidence
        );
        assert!(mpe.probability > 0.0);
    }
}

#[test]
fn mpe_states_have_positive_posterior() {
    // Every MPE state must be possible under the posterior marginals.
    let net = datasets::student();
    let solver = Solver::new(&net);
    let mut session = solver.session();
    for case in sampler::generate_cases(&net, 10, 0.3, 13) {
        let posterior = session.posteriors(&case.evidence).unwrap();
        let mpe = session
            .run(&Query::new().evidence(case.evidence.clone()).mpe())
            .unwrap()
            .into_mpe()
            .unwrap();
        for v in 0..net.num_vars() {
            let state = mpe.assignment[v];
            assert!(
                posterior.marginal(VarId::from_index(v))[state] > 0.0,
                "var {v} state {state} has zero posterior"
            );
        }
    }
}

#[test]
fn query_mpe_matches_standalone_function() {
    // The Query::mpe() path and the standalone helper must agree exactly
    // (same scratch-backed max-product underneath).
    let net = datasets::asia();
    let solver = Solver::new(&net);
    let mut session = solver.session();
    for case in sampler::generate_cases(&net, 8, 0.3, 41) {
        let via_query = session.mpe(&case.evidence).unwrap();
        let standalone = most_probable_explanation(solver.prepared(), &case.evidence).unwrap();
        assert_eq!(via_query, standalone);
    }
}

#[test]
fn mpe_on_paper_scale_network() {
    // Smoke test on the Pigs analogue: runs, satisfies evidence, yields a
    // positive probability matching a direct chain-rule evaluation.
    let w = workload_by_name("pigs").unwrap();
    let net = w.build();
    let solver = Solver::new(&net);
    let case = &sampler::generate_cases(&net, 1, 0.2, 5)[0];
    let mpe = solver
        .query(&Query::new().evidence(case.evidence.clone()).mpe())
        .unwrap()
        .into_mpe()
        .unwrap();
    for (var, state) in case.evidence.iter() {
        assert_eq!(mpe.assignment[var.index()], state);
    }
    let mut direct = 1.0f64;
    for v in 0..net.num_vars() {
        let id = VarId::from_index(v);
        let cpt = net.cpt(id);
        let parents: Vec<usize> = cpt
            .parents()
            .iter()
            .map(|p| mpe.assignment[p.index()])
            .collect();
        direct *= cpt.probability(mpe.assignment[v], &parents);
    }
    let rel = (mpe.probability - direct).abs() / direct.max(f64::MIN_POSITIVE);
    assert!(
        rel < 1e-6,
        "reported {} vs chain rule {}",
        mpe.probability,
        direct
    );
}

#[test]
fn unconditional_mpe_beats_forward_samples() {
    // The unconditional MPE is at least as probable as any sampled
    // assignment.
    let net = datasets::cancer();
    let solver = Solver::new(&net);
    let mpe = solver.session().mpe(&Evidence::empty()).unwrap();
    let joint = |assignment: &[usize]| -> f64 {
        (0..net.num_vars())
            .map(|v| {
                let cpt = net.cpt(VarId::from_index(v));
                let parents: Vec<usize> = cpt
                    .parents()
                    .iter()
                    .map(|p| assignment[p.index()])
                    .collect();
                cpt.probability(assignment[v], &parents)
            })
            .product()
    };
    for case in sampler::generate_cases(&net, 50, 0.0, 3) {
        assert!(joint(&case.full_assignment) <= mpe.probability + 1e-12);
    }
}
