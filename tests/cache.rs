//! The query-result cache's contract, per the acceptance criteria:
//!
//! * **cache-on results are bit-identical to cache-off** across every
//!   engine × threads {1, 4, 8} × execution path (single queries through
//!   a session, `run_batch` on both its strategies, and the serve front
//!   end), for mixed workloads including targeted marginals, virtual
//!   evidence (scale variants included), MPE, and failing slots;
//! * hits and misses are counted per query — including **per slot**
//!   inside a batch — and repeated traffic actually hits;
//! * canonicalization folds `-0.0` and likelihood scale into one entry,
//!   while malformed queries fail validation **before** key derivation
//!   can touch the cache.

use std::sync::Arc;

use fastbn::bayesnet::{datasets, sampler};
use fastbn::{
    CacheConfig, EngineKind, InferenceError, Prepared, Query, QueryBatch, QueryResult, Solver,
};

/// A mixed stream over Asia with deliberate repeats: plain marginals,
/// targeted, virtual evidence (plus a scaled twin), MPE, and two
/// failing slots.
fn mixed_queries(net: &fastbn::BayesianNetwork) -> Vec<Query> {
    let dysp = net.var_id("Dyspnea").unwrap();
    let lung = net.var_id("LungCancer").unwrap();
    let xray = net.var_id("XRay").unwrap();
    let tub = net.var_id("Tuberculosis").unwrap();
    let either = net.var_id("TbOrCa").unwrap();
    let mut queries: Vec<Query> = sampler::generate_cases(net, 8, 0.25, 41)
        .into_iter()
        .map(|c| Query::new().evidence(c.evidence))
        .collect();
    queries.push(Query::new().observe(dysp, 0).targets([lung, tub]));
    queries.push(Query::new().likelihood(xray, vec![0.8, 0.2]));
    queries.push(Query::new().likelihood(xray, vec![1.6, 0.4])); // same key as above
    queries.push(Query::new().observe(dysp, 0).mpe());
    queries.push(Query::new().observe(tub, 0).observe(either, 1)); // P(e) = 0
    queries.push(Query::new().likelihood(xray, vec![0.0, 0.0])); // malformed
                                                                 // Repeat the whole stream so the second half hits the cache.
    let repeats: Vec<Query> = queries.clone();
    queries.extend(repeats);
    queries
}

/// Slot-by-slot bitwise comparison (marginals via `to_bits` on
/// `prob_evidence` and exact equality elsewhere).
fn assert_bitwise(
    expected: &[Result<QueryResult, InferenceError>],
    got: &[Result<QueryResult, InferenceError>],
    label: &str,
) {
    assert_eq!(expected.len(), got.len(), "{label}: length");
    for (i, (want, have)) in expected.iter().zip(got).enumerate() {
        assert_eq!(want, have, "{label}: slot {i}");
        if let (Ok(QueryResult::Marginals(p)), Ok(QueryResult::Marginals(q))) = (want, have) {
            assert_eq!(p.max_abs_diff(q), 0.0, "{label}: slot {i} not bitwise");
            assert_eq!(p.prob_evidence.to_bits(), q.prob_evidence.to_bits());
        }
    }
}

#[test]
fn cache_on_is_bit_identical_to_cache_off_across_engines_threads_and_paths() {
    let net = datasets::asia();
    let prepared = Arc::new(Prepared::new(&net, &Default::default()));
    let queries = mixed_queries(&net);
    let batch = QueryBatch::from(queries.clone());
    for kind in EngineKind::all() {
        for threads in [1usize, 4, 8] {
            let label = format!("{kind:?} t={threads}");
            let plain = Solver::from_prepared(prepared.clone())
                .engine(kind)
                .threads(threads)
                .build();
            let cached = Solver::from_prepared(prepared.clone())
                .engine(kind)
                .threads(threads)
                .cache(CacheConfig::default())
                .build();
            // The cache-off oracle: one session, one query at a time.
            let mut plain_session = plain.session();
            let expected: Vec<_> = queries.iter().map(|q| plain_session.run(q)).collect();
            // Single-query path, cold then warm.
            let mut session = cached.session();
            let cold: Vec<_> = queries.iter().map(|q| session.run(q)).collect();
            assert_bitwise(&expected, &cold, &format!("{label} single cold"));
            let warm: Vec<_> = queries.iter().map(|q| session.run(q)).collect();
            assert_bitwise(&expected, &warm, &format!("{label} single warm"));
            // Batch path (wide enough for the outer-parallel strategy at
            // every thread count here).
            let batched = cached.query_batch(&batch);
            assert_bitwise(&expected, &batched, &format!("{label} batch"));
            let stats = cached.cache_stats().unwrap();
            assert!(
                stats.hits > stats.misses,
                "{label}: repeated traffic must hit ({stats:?})"
            );
            assert!(stats.evictions == 0, "{label}: default budget fits Asia");
        }
    }
}

#[test]
fn cached_batches_count_hits_per_slot() {
    let net = datasets::asia();
    let solver = Solver::builder(&net)
        .engine(EngineKind::Hybrid)
        .threads(4)
        .cache(CacheConfig::default())
        .build();
    let dysp = net.var_id("Dyspnea").unwrap();
    // 8 slots, 2 distinct keys, wide enough for the outer-parallel path.
    let batch: QueryBatch = (0..8).map(|i| Query::new().observe(dysp, i % 2)).collect();
    let first = solver.query_batch(&batch);
    assert!(first.iter().all(Result::is_ok));
    let after_first = solver.cache_stats().unwrap();
    // Every slot consulted the cache; concurrent chunks may race the
    // same key to a miss, but at most one insertion per key survives.
    assert_eq!(after_first.hits + after_first.misses, 8);
    assert!(after_first.misses >= 2);
    assert_eq!(after_first.entries, 2);
    let second = solver.query_batch(&batch);
    assert_bitwise(&first, &second, "second pass");
    let after_second = solver.cache_stats().unwrap();
    assert_eq!(
        after_second.hits - after_first.hits,
        8,
        "a warm batch hits on every slot"
    );
    assert_eq!(after_second.misses, after_first.misses);
}

#[test]
fn cached_solver_through_the_server_matches_the_uncached_oracle() {
    use fastbn::{ServeError, Server};
    use std::time::Duration;

    let net = datasets::asia();
    let prepared = Arc::new(Prepared::new(&net, &Default::default()));
    let queries = mixed_queries(&net);
    let plain = Solver::from_prepared(prepared.clone()).build();
    let mut plain_session = plain.session();
    let expected: Vec<_> = queries.iter().map(|q| plain_session.run(q)).collect();

    let cached = Arc::new(
        Solver::from_prepared(prepared)
            .engine(EngineKind::Hybrid)
            .threads(2)
            .cache(CacheConfig::default())
            .build(),
    );
    let server = Server::builder(Arc::clone(&cached))
        .workers(2)
        .max_batch(4)
        .max_delay(Duration::from_micros(100))
        .build();
    // Concurrent submitters, strided shares, reassembled in order.
    let submitters = 4;
    let mut got: Vec<Option<Result<QueryResult, ServeError>>> = vec![None; queries.len()];
    let collected: Vec<(usize, Result<QueryResult, ServeError>)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..submitters)
            .map(|s| {
                let server = &server;
                let queries = &queries;
                scope.spawn(move || {
                    let mut mine = Vec::new();
                    for (idx, query) in queries.iter().enumerate().skip(s).step_by(submitters) {
                        let pending = server.submit(query.clone()).expect("accepting");
                        mine.push((idx, pending.wait()));
                    }
                    mine
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("submitter panicked"))
            .collect()
    });
    for (idx, result) in collected {
        got[idx] = Some(result);
    }
    for (i, (want, have)) in expected.iter().zip(&got).enumerate() {
        match (want, have.as_ref().expect("every slot answered")) {
            (Ok(w), Ok(h)) => {
                assert_eq!(w, h, "slot {i}");
                if let (QueryResult::Marginals(p), QueryResult::Marginals(q)) = (w, h) {
                    assert_eq!(p.max_abs_diff(q), 0.0, "slot {i} not bitwise");
                    assert_eq!(p.prob_evidence.to_bits(), q.prob_evidence.to_bits());
                }
            }
            (Err(w), Err(ServeError::Inference(h))) => assert_eq!(w, h, "slot {i}"),
            (w, h) => panic!("slot {i}: {w:?} vs {h:?}"),
        }
    }
    server.shutdown();
    let cache_stats = cached.cache_stats().unwrap();
    let server_stats = server.stats();
    assert!(
        cache_stats.hits + server_stats.dedups > 0,
        "repeated stream: some repeats cache-hit or dedup ({cache_stats:?}, {server_stats:?})"
    );
    assert_eq!(server_stats.completed, queries.len() as u64);
}

#[test]
fn negative_zero_and_scale_share_one_cache_entry() {
    let net = datasets::asia();
    let solver = Solver::builder(&net).cache(CacheConfig::default()).build();
    let xray = net.var_id("XRay").unwrap();
    let variants = [
        Query::new().likelihood(xray, vec![1.0, 0.0]),
        Query::new().likelihood(xray, vec![1.0, -0.0]),
        Query::new().likelihood(xray, vec![2.5, 0.0]),
        Query::new().likelihood(xray, vec![0.125, -0.0]),
    ];
    let results: Vec<_> = variants.iter().map(|q| solver.query(q).unwrap()).collect();
    for (i, r) in results.iter().enumerate() {
        assert_eq!(r, &results[0], "variant {i} bit-identical");
    }
    let stats = solver.cache_stats().unwrap();
    assert_eq!(stats.misses, 1, "first variant computed");
    assert_eq!(stats.hits, 3, "all other variants hit its entry");
    assert_eq!(stats.entries, 1);
}

#[test]
fn nan_and_inf_fail_validation_before_key_derivation_reaches_the_cache() {
    let net = datasets::asia();
    let solver = Solver::builder(&net).cache(CacheConfig::default()).build();
    let xray = net.var_id("XRay").unwrap();
    for bad in [
        vec![f64::NAN, 1.0],
        vec![1.0, f64::NEG_INFINITY],
        vec![f64::INFINITY, f64::INFINITY],
    ] {
        let err = solver
            .query(&Query::new().likelihood(xray, bad.clone()))
            .unwrap_err();
        assert!(
            matches!(err, InferenceError::MalformedLikelihood { .. }),
            "{bad:?} → {err:?}"
        );
    }
    let stats = solver.cache_stats().unwrap();
    assert_eq!(
        stats,
        fastbn::CacheStats::default(),
        "no lookup, no insert, nothing cached"
    );
}
