//! The telemetry contract at the serving surface:
//!
//! * the `ServerStats` snapshot and the exported `serve.*` counters are
//!   the **same cells** — they can never disagree, under load or after
//!   a drain;
//! * the per-stage histograms observe every delivered request, and the
//!   per-model counters mirror `model_stats` exactly;
//! * `telemetry(false)` keeps the counters (and the accounting
//!   invariant) but records no histograms;
//! * `metrics_snapshot()` folds in the registry-side gauges (cache
//!   stats, shared-pool occupancy) and serializes to stable JSON.

use std::sync::Arc;
use std::time::Duration;

use fastbn::bayesnet::datasets;
use fastbn::{
    CacheConfig, EngineKind, MetricsRegistry, ModelConfig, Query, Registry, RoutedServer, Server,
    Solver, SINGLE_MODEL_ID,
};

/// Drives `n` submissions (alternating posterior and MPE queries, so
/// windows carry duplicates for dedup *and* distinct work) through a
/// single-model server and waits them all out.
fn drive(server: &Server, n: usize) {
    let pending: Vec<_> = (0..n)
        .map(|i| {
            let query = if i % 4 == 1 {
                Query::new().mpe()
            } else {
                Query::new()
            };
            server.submit(query).unwrap()
        })
        .collect();
    for p in pending {
        p.wait().unwrap();
    }
}

#[test]
fn server_stats_and_metrics_are_one_source_of_truth() {
    let net = datasets::asia();
    let solver = Arc::new(
        Solver::builder(&net)
            .engine(EngineKind::Hybrid)
            .threads(2)
            .build(),
    );
    let server = Server::builder(Arc::clone(&solver))
        .workers(2)
        .max_batch(8)
        .max_delay(Duration::from_micros(200))
        .build();
    drive(&server, 64);
    server.shutdown();

    let stats = server.stats();
    assert_eq!(stats.submitted, 64);
    assert_eq!(
        stats.submitted,
        stats.completed + stats.cancelled,
        "drain invariant"
    );

    let snap = server.metrics_snapshot();
    // Bit-for-bit: both views read the same counter cells.
    assert_eq!(snap.counter("serve.submitted"), stats.submitted);
    assert_eq!(snap.counter("serve.rejected"), stats.rejected);
    assert_eq!(snap.counter("serve.dequeued"), stats.dequeued);
    assert_eq!(snap.counter("serve.completed"), stats.completed);
    assert_eq!(snap.counter("serve.cancelled"), stats.cancelled);
    assert_eq!(snap.counter("serve.batches"), stats.batches);
    assert_eq!(snap.counter("serve.dedups"), stats.dedups);
    assert_eq!(snap.counter("serve.worker_panics"), stats.worker_panics);

    // The per-model row mirrors the single model's counters.
    let per_model = server.model_stats();
    assert_eq!(per_model.len(), 1);
    let row = &per_model[0];
    assert_eq!(row.model, SINGLE_MODEL_ID);
    assert_eq!(
        snap.counter(&format!("serve.model.{SINGLE_MODEL_ID}.submitted")),
        row.submitted
    );
    assert_eq!(
        snap.counter(&format!("serve.model.{SINGLE_MODEL_ID}.completed")),
        row.completed
    );

    // Every delivered request passed through every stage histogram.
    for stage in [
        "serve.stage.admission_ns",
        "serve.stage.queue_wait_ns",
        "serve.stage.window_ns",
        "serve.stage.compute_ns",
        "serve.stage.delivery_ns",
        "serve.request.total_ns",
        "serve.batch.size",
    ] {
        let h = snap
            .histogram(stage)
            .unwrap_or_else(|| panic!("stage histogram {stage} missing from snapshot"));
        assert!(h.count > 0, "{stage} recorded nothing");
    }
    let total = snap.histogram("serve.request.total_ns").unwrap();
    assert_eq!(
        total.count, stats.completed,
        "one end-to-end sample per delivered request"
    );
    assert!(total.p50() <= total.p99() && total.p99() <= total.max);
    let sizes = snap.histogram("serve.batch.size").unwrap();
    assert_eq!(
        sizes.count, stats.batches,
        "one size sample per dispatched batch"
    );
    assert!(sizes.max <= 8, "windows never exceed max_batch");
}

#[test]
fn telemetry_off_keeps_counters_but_records_no_histograms() {
    let net = datasets::asia();
    let solver = Arc::new(Solver::new(&net));
    let server = Server::builder(solver).telemetry(false).build();
    assert!(!server.metrics().is_timing_enabled());
    drive(&server, 32);
    server.shutdown();

    let stats = server.stats();
    assert_eq!(stats.submitted, 32);
    assert_eq!(stats.submitted, stats.completed + stats.cancelled);
    let snap = server.metrics_snapshot();
    assert_eq!(snap.counter("serve.submitted"), 32, "counters stay live");
    for (name, h) in &snap.histograms {
        assert!(h.is_empty(), "{name} recorded despite telemetry(false)");
    }
}

#[test]
fn routed_metrics_cover_models_caches_and_pool() {
    let registry = Arc::new(Registry::builder().threads(2).build());
    registry
        .load(
            "asia",
            &datasets::asia(),
            &ModelConfig::new().cache(CacheConfig::default()),
        )
        .unwrap();
    registry
        .load("sprinkler", &datasets::sprinkler(), &ModelConfig::new())
        .unwrap();
    let server = RoutedServer::builder(Arc::clone(&registry))
        .workers(2)
        .max_delay(Duration::from_micros(100))
        .build();
    let pending: Vec<_> = (0..24)
        .map(|i| {
            let model = if i % 3 == 0 { "sprinkler" } else { "asia" };
            server.submit(model, Query::new()).unwrap()
        })
        .collect();
    for p in pending {
        p.wait().unwrap();
    }
    server.shutdown();

    let snap = server.metrics_snapshot();
    for row in server.model_stats() {
        assert_eq!(
            snap.counter(&format!("serve.model.{}.submitted", row.model)),
            row.submitted,
            "per-model counters mirror model_stats for {}",
            row.model
        );
        assert_eq!(row.submitted, row.completed + row.cancelled);
    }
    // Registry-side gauges rode along with the snapshot: the cached
    // model's cache stats and the shared pool's occupancy counters.
    let cache_stats = registry.cache_stats_for("asia").unwrap();
    assert_eq!(
        snap.gauge("registry.model.asia.cache.hits"),
        Some(cache_stats.hits)
    );
    assert!(snap.gauge("registry.model.sprinkler.cache.hits").is_none());
    assert_eq!(snap.gauge("registry.pool.threads"), Some(2));
    assert_eq!(snap.gauge("registry.pool.occupancy"), Some(0), "drained");

    // The JSON export is stable, self-describing, and round-trips.
    let json = snap.to_json().to_pretty();
    let parsed = fastbn::telemetry::Json::parse(&json).unwrap();
    let counters = parsed.get("counters").unwrap();
    assert_eq!(
        counters.get("serve.submitted").and_then(|v| v.as_u64()),
        Some(24)
    );
}

#[test]
fn injected_metrics_registry_aggregates_two_servers() {
    let net = datasets::sprinkler();
    let metrics = Arc::new(MetricsRegistry::new());
    let a = Server::builder(Arc::new(Solver::new(&net)))
        .metrics(Arc::clone(&metrics))
        .build();
    let b = Server::builder(Arc::new(Solver::new(&net)))
        .metrics(Arc::clone(&metrics))
        .build();
    drive(&a, 8);
    drive(&b, 8);
    a.shutdown();
    b.shutdown();
    // One registry, one set of cells: the two servers' traffic sums.
    assert_eq!(metrics.snapshot().counter("serve.submitted"), 16);
    assert_eq!(a.stats().submitted, 16);
}
