//! The batch path's headline guarantee: `run_batch` over N independent
//! queries returns results **bit-identical** to N sequential `run` calls
//! — for every engine family, pool width, and batch composition
//! (marginals, targeted marginals, virtual evidence, MPE, and failing
//! items mixed together).

use std::sync::Arc;

use fastbn::bayesnet::{datasets, sampler};
use fastbn::{EngineKind, InferenceError, Prepared, Query, QueryBatch, QueryResult, Solver};

/// A mixed batch over Asia: plain marginals from sampled evidence, a
/// targeted query, a virtual-evidence query, an MPE query, an impossible
/// query, and a malformed-likelihood query.
fn mixed_batch(net: &fastbn::BayesianNetwork, n_sampled: usize) -> QueryBatch {
    let dysp = net.var_id("Dyspnea").unwrap();
    let lung = net.var_id("LungCancer").unwrap();
    let xray = net.var_id("XRay").unwrap();
    let tub = net.var_id("Tuberculosis").unwrap();
    let either = net.var_id("TbOrCa").unwrap();
    let mut batch: QueryBatch = sampler::generate_cases(net, n_sampled, 0.25, 42)
        .into_iter()
        .map(|c| Query::new().evidence(c.evidence))
        .collect();
    batch.push(Query::new().observe(dysp, 0).targets([lung, tub]));
    batch.push(Query::new().likelihood(xray, vec![0.8, 0.2]));
    batch.push(Query::new().observe(dysp, 0).mpe());
    // P(e) = 0: fails at extraction, after full propagation.
    batch.push(Query::new().observe(tub, 0).observe(either, 1));
    // Malformed likelihood: fails validation before touching scratch.
    batch.push(Query::new().likelihood(xray, vec![0.0, 0.0]));
    batch
}

/// One-at-a-time ground truth through a single session, exactly as a
/// caller without the batch API would execute the same queries.
fn sequential(solver: &Solver, batch: &QueryBatch) -> Vec<Result<QueryResult, InferenceError>> {
    let mut session = solver.session();
    batch.iter().map(|q| session.run(q)).collect()
}

fn assert_identical(
    a: &[Result<QueryResult, InferenceError>],
    b: &[Result<QueryResult, InferenceError>],
    label: &str,
) {
    assert_eq!(a.len(), b.len(), "{label}: length mismatch");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(x, y, "{label}: slot {i} differs");
        if let (Ok(QueryResult::Marginals(p)), Ok(QueryResult::Marginals(q))) = (x, y) {
            assert_eq!(p.max_abs_diff(q), 0.0, "{label}: slot {i} not bitwise");
            assert_eq!(p.prob_evidence.to_bits(), q.prob_evidence.to_bits());
        }
    }
}

#[test]
fn batch_matches_sequential_loop_for_every_engine_and_pool_width() {
    let net = datasets::asia();
    let prepared = Arc::new(Prepared::new(&net, &Default::default()));
    // 12 sampled + 5 structured queries: wider than the widest pool, so
    // the 4- and 8-thread parallel engines take the outer-parallel path.
    let batch = mixed_batch(&net, 12);
    for kind in EngineKind::all() {
        for threads in [1usize, 4, 8] {
            let solver = Solver::from_prepared(prepared.clone())
                .engine(kind)
                .threads(threads)
                .build();
            let expected = sequential(&solver, &batch);
            let got = solver.query_batch(&batch);
            assert_identical(&expected, &got, &format!("{kind} t={threads}"));
            // And again through a reused session (scratch reuse between
            // batch runs must not perturb results either).
            let mut session = solver.session();
            let again = session.run_batch(&batch);
            assert_identical(&expected, &again, &format!("{kind} t={threads} reused"));
        }
    }
}

#[test]
fn batches_narrower_than_the_pool_take_the_inner_parallel_path() {
    // A 3-item batch on an 8-thread engine must fall back to the serial
    // loop (per-query inner parallelism) and still match exactly.
    let net = datasets::asia();
    let solver = Solver::builder(&net)
        .engine(EngineKind::Hybrid)
        .threads(8)
        .build();
    let dysp = net.var_id("Dyspnea").unwrap();
    let batch = QueryBatch::new()
        .with(Query::new().observe(dysp, 0))
        .with(Query::new())
        .with(Query::new().observe(dysp, 1).mpe());
    let expected = sequential(&solver, &batch);
    let got = solver.query_batch(&batch);
    assert_identical(&expected, &got, "narrow batch");
}

#[test]
fn failing_items_fail_alone() {
    let net = datasets::asia();
    let solver = Solver::builder(&net)
        .engine(EngineKind::Hybrid)
        .threads(4)
        .build();
    let batch = mixed_batch(&net, 12);
    let results = solver.query_batch(&batch);
    let n = results.len();
    // The two planted failures sit in the last two slots…
    assert_eq!(
        results[n - 2],
        Err(InferenceError::ImpossibleEvidence),
        "impossible-evidence slot"
    );
    assert!(
        matches!(
            results[n - 1],
            Err(InferenceError::MalformedLikelihood { .. })
        ),
        "malformed-likelihood slot"
    );
    // …and every other slot succeeded despite sharing chunk scratch with
    // the failures.
    for (i, r) in results[..n - 2].iter().enumerate() {
        assert!(r.is_ok(), "slot {i} poisoned by a failing neighbour: {r:?}");
    }
}

#[test]
fn empty_and_singleton_batches() {
    let net = datasets::sprinkler();
    let solver = Solver::builder(&net)
        .engine(EngineKind::Hybrid)
        .threads(4)
        .build();
    assert!(solver.query_batch(&QueryBatch::new()).is_empty());
    let rain = net.var_id("Rain").unwrap();
    let q = Query::new().observe(rain, 0);
    let one = solver.query_batch(&QueryBatch::new().with(q.clone()));
    assert_eq!(one.len(), 1);
    assert_eq!(one[0], solver.query(&q));
}

#[test]
fn concurrent_batches_from_many_sessions_are_deterministic() {
    // Several OS threads each running batches against one shared solver:
    // outer parallelism (batch chunks), inner parallelism (engine
    // regions) and cross-session concurrency all on one pool, and every
    // result still bitwise equal to the sequential loop.
    let net = datasets::asia();
    let solver = Solver::builder(&net)
        .engine(EngineKind::Hybrid)
        .threads(4)
        .build();
    let batch = mixed_batch(&net, 10);
    let expected = sequential(&solver, &batch);
    std::thread::scope(|scope| {
        for _ in 0..4 {
            scope.spawn(|| {
                let mut session = solver.session();
                for _ in 0..5 {
                    let got = session.run_batch(&batch);
                    assert_identical(&expected, &got, "concurrent batch");
                }
            });
        }
    });
}
